"""Parasitic RC annotation of extracted netlists.

The extractor (:mod:`repro.extract`) knows, for every electrical node, the
conducting rectangles that form it and the transistor channels that load
it.  This module turns that geometry into the per-net electrical estimates
static timing needs:

* **wire capacitance** — layer area capacitance (fF per square lambda)
  over each member rectangle, plus a perimeter fringe term;
* **wire resistance** — the layer's sheet resistance times the rectangle's
  aspect ratio in squares, summed over the node's members (the lumped-RC
  stand-in for a distributed Elmore ladder);
* **gate load** — thin-oxide capacitance over every transistor channel
  whose gate is the node;
* **diffusion load** — source/drain junction area is already counted by
  the member-rectangle sweep, because diffusion pieces are node members.

The arithmetic is a pure function of ``(layer, rectangle)`` — translation
and orientation invariant — which is what lets the hierarchical engine
(:mod:`repro.analysis.hier`) reuse per-cell annotations across instances:
both the flat extractor and the hierarchical composition call
:func:`annotate_parasitics` over the same item enumeration, so their
parasitic dictionaries are identical whenever their netlists are.

All values are era-scale estimates read from
:class:`~repro.technology.technology.Technology` properties; absolute
numbers are not calibrated to a 1979 process run, and only ratios between
designs compiled in the same technology are meaningful (the same caveat as
:func:`repro.metrics.report.speed_estimate_ns`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.geometry.rect import Rect
from repro.technology.technology import Technology

#: Fallback per-layer area capacitance (fF / sq lambda) for technologies
#: that do not declare explicit properties.
_DEFAULT_AREA_CAP_FF = {"diffusion": 1.0, "poly": 0.45, "metal": 0.3}

#: Fallback sheet resistances (ohm / square).
_DEFAULT_SHEET_OHM = {"diffusion": 10.0, "poly": 50.0, "metal": 0.03}


def rc_ns(resistance_ohm: float, capacitance_ff: float) -> float:
    """An RC product in nanoseconds (ohms times femtofarads)."""
    return resistance_ohm * capacitance_ff * 1e-6


@dataclass
class NetParasitics:
    """The extracted electrical burden of one net."""

    name: str
    wire_cap_ff: float = 0.0      # area + fringe capacitance of the wiring
    wire_res_ohm: float = 0.0     # lumped wire resistance (sheet * squares)
    gate_cap_ff: float = 0.0      # thin-oxide load of gates on this net
    gate_count: int = 0           # transistors whose gate is this net
    channel_count: int = 0        # transistors whose source/drain is this net

    @property
    def total_cap_ff(self) -> float:
        """Everything a driver of this net must charge."""
        return self.wire_cap_ff + self.gate_cap_ff


class ParasiticModel:
    """Per-technology geometry-to-RC conversion."""

    def __init__(self, technology: Technology):
        self.technology = technology
        self._area_cap: Dict[str, float] = {}
        self._sheet: Dict[str, float] = {}
        for layer, fallback in _DEFAULT_AREA_CAP_FF.items():
            self._area_cap[layer] = technology.property(
                f"area_cap_ff_per_sq_lambda_{layer}", fallback)
        for layer, fallback in _DEFAULT_SHEET_OHM.items():
            self._sheet[layer] = technology.property(
                f"sheet_resistance_{layer}", fallback)
        self.fringe_cap_ff = technology.property("fringe_cap_ff_per_lambda", 0.1)
        self.gate_cap_ff_per_sq = technology.property(
            "gate_cap_ff_per_sq_lambda", 2.8)
        self.pullup_res_ohm = technology.property("pullup_resistance_ohm", 40000.0)
        self.pulldown_res_ohm = technology.property("pulldown_resistance_ohm", 10000.0)
        self.pass_res_ohm = technology.property("pass_resistance_ohm", 15000.0)

    # -- per-rectangle terms (pure in (layer, rect): reusable across frames) --

    def rect_cap_ff(self, layer: str, rect: Rect) -> float:
        area_cap = self._area_cap.get(layer, 0.3)
        return (rect.width * rect.height * area_cap
                + 2 * (rect.width + rect.height) * self.fringe_cap_ff)

    def rect_res_ohm(self, layer: str, rect: Rect) -> float:
        sheet = self._sheet.get(layer, 0.03)
        short = min(rect.width, rect.height)
        long = max(rect.width, rect.height)
        if short <= 0:
            return 0.0
        return sheet * (long / short)

    def gate_cap_ff(self, channel: Rect) -> float:
        return channel.width * channel.height * self.gate_cap_ff_per_sq


def annotate_parasitics(model: ParasiticModel,
                        items: Iterable[Tuple[str, Rect]],
                        node_of_item: Dict[int, str],
                        devices: Sequence,
                        device_channels: Optional[Sequence[Rect]] = None
                        ) -> Dict[str, NetParasitics]:
    """Fold item geometry and device loading into per-net parasitics.

    ``items`` enumerates the conducting rectangles in item-id order (the
    extractor's diffusion pieces, then poly, then metal); ``node_of_item``
    maps item ids to node names; ``devices`` is the emitted transistor list
    and ``device_channels`` the parallel channel rectangles (gate-oxide
    geometry).  Both extraction paths — flat and hierarchical — call this
    with identical enumerations, so the annotation is identical whenever
    the netlists are.
    """
    nets: Dict[str, NetParasitics] = {}

    def net(name: str) -> NetParasitics:
        entry = nets.get(name)
        if entry is None:
            entry = NetParasitics(name)
            nets[name] = entry
        return entry

    for item_id, (layer, rect) in enumerate(items):
        name = node_of_item.get(item_id)
        if name is None:
            continue
        entry = net(name)
        entry.wire_cap_ff += model.rect_cap_ff(layer, rect)
        entry.wire_res_ohm += model.rect_res_ohm(layer, rect)

    for index, device in enumerate(devices):
        channel = device_channels[index] if device_channels is not None else None
        gate_entry = net(device.gate)
        gate_entry.gate_count += 1
        if channel is not None:
            gate_entry.gate_cap_ff += model.gate_cap_ff(channel)
        else:
            gate_entry.gate_cap_ff += model.gate_cap_ff_per_sq * (
                device.width * device.length)
        net(device.source).channel_count += 1
        if device.drain != device.source:
            net(device.drain).channel_count += 1
    return nets
