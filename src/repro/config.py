"""Centralized environment-knob parsing for the whole toolchain.

Every behavioural environment variable the toolchain reads is parsed and
validated here, once, so the knobs cannot drift between subsystems (the
worker pool, the diagnostics layer and the artifact store all used to
parse their own copies).  The full table:

===================== ============ ===================================================
Variable              Default      Meaning
===================== ============ ===================================================
``REPRO_WORKERS``     serial       ``0``/unset/``1`` run serial, ``auto`` uses
                                   ``os.cpu_count()``, any other non-negative
                                   integer is the worker count for the sharded
                                   analysis engines (:mod:`repro.parallel`).
``REPRO_PARALLEL_MIN`` ``5000``    Minimum flat rectangle count before the
                                   geometry engines shard; small designs are not
                                   worth the pool round-trips.
``REPRO_STRICT``      off          ``1`` (any non-``0`` value) makes every guarded
                                   fallback fatal — FBK/ROU degradations *and* the
                                   artifact store's STO corruption recoveries —
                                   so CI surfaces fast-path bugs instead of hiding
                                   them behind reference recomputation.
``REPRO_STORE``       unset        Directory of the persistent content-addressed
                                   artifact store (:mod:`repro.store`).  When set,
                                   every :class:`~repro.analysis.HierAnalyzer`
                                   layers a durable :class:`~repro.store.DiskStore`
                                   under its in-memory cache, so analysis warm
                                   starts survive process restarts and worker
                                   processes publish prewarmed artifacts once
                                   instead of pickling them back per run.
``REPRO_TRACE``       unset        Path of a Chrome trace-event JSON file.  When
                                   set, :mod:`repro.obs.trace` records spans for
                                   every flow stage (analysis passes, PnR
                                   escalation, sim settle, store traffic,
                                   including pool-worker spans) and writes the
                                   trace there at process exit; open it in
                                   Perfetto.  Unset, tracing is off and the
                                   instrumentation is a no-op.
``REPRO_METRICS``     unset        Path of a JSON file receiving a final
                                   :mod:`repro.obs.metrics` registry snapshot
                                   (fallback/diagnostic counts, store and PnR
                                   counters, phase timings) at process exit.
===================== ============ ===================================================

Parsing raises ``ValueError`` on malformed values (a typo'd knob silently
running serial — or silently not persisting — is exactly the kind of
configuration bug this module exists to catch).
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "DEFAULT_PARALLEL_MIN",
    "workers",
    "parallel_min",
    "strict_mode",
    "store_dir",
    "trace_path",
    "metrics_path",
]

#: Default for ``REPRO_PARALLEL_MIN``: below this many flat rectangles the
#: geometry engines stay serial (pool startup would dominate the analysis).
DEFAULT_PARALLEL_MIN = 5000


def workers() -> int:
    """The configured worker count from ``REPRO_WORKERS``; < 2 means serial.

    ``0``/unset/empty/``1`` select serial execution, ``auto`` resolves to
    ``os.cpu_count()``, anything else must parse as a non-negative integer.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip().lower()
    if raw in ("", "0", "1"):
        return 0
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer or 'auto', got {raw!r}")
    if value < 0:
        raise ValueError(f"REPRO_WORKERS must be >= 0, got {value}")
    return value


def parallel_min() -> int:
    """Minimum flat rectangle count before DRC/extraction shard."""
    raw = os.environ.get("REPRO_PARALLEL_MIN", "").strip()
    if not raw:
        return DEFAULT_PARALLEL_MIN
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_PARALLEL_MIN must be an integer, got {raw!r}")
    if value < 0:
        raise ValueError(f"REPRO_PARALLEL_MIN must be >= 0, got {value}")
    return value


def strict_mode() -> bool:
    """True when ``REPRO_STRICT`` is set (CI): fallbacks become fatal."""
    return os.environ.get("REPRO_STRICT", "") not in ("", "0")


def store_dir() -> Optional[str]:
    """The persistent artifact store directory from ``REPRO_STORE``.

    ``None`` when unset or empty (analysis caches stay purely in-memory).
    The directory is created on first use by the store itself; here the
    value is only validated to be a plausible path (an existing *file* at
    the location is a configuration error worth failing loudly on).
    """
    raw = os.environ.get("REPRO_STORE", "").strip()
    if not raw:
        return None
    if os.path.exists(raw) and not os.path.isdir(raw):
        raise ValueError(
            f"REPRO_STORE points at a non-directory: {raw!r}")
    return raw


def _output_path(variable: str) -> Optional[str]:
    """A writable-file knob: ``None`` when unset, a directory is an error."""
    raw = os.environ.get(variable, "").strip()
    if not raw:
        return None
    if os.path.isdir(raw):
        raise ValueError(f"{variable} points at a directory: {raw!r}")
    return raw


def trace_path() -> Optional[str]:
    """Chrome trace-event output path from ``REPRO_TRACE``.

    When set, :mod:`repro.obs.trace` enables span recording at import and
    writes the trace there at process exit; ``None`` disables tracing.
    """
    return _output_path("REPRO_TRACE")


def metrics_path() -> Optional[str]:
    """Metrics snapshot output path from ``REPRO_METRICS``.

    When set, :mod:`repro.obs.metrics` dumps a final registry snapshot as
    JSON there at process exit; ``None`` disables the dump.
    """
    return _output_path("REPRO_METRICS")
