"""CIF 2.0 parser.

Parses the subset of CIF emitted by :mod:`repro.cif.writer` plus the common
constructs found in era files: comments in parentheses, symbol definitions
``DS``/``DF``, boxes, polygons, wires, round flashes, layer selection, calls
with arbitrary ``T``/``R``/``MX``/``MY`` transform lists, the ``9`` symbol
name and ``94`` label user extensions, and the terminating ``E``.

The parser rebuilds a :class:`~repro.layout.library.Library`; geometry
emitted with the writer's default scale convention round-trips exactly.

Error handling comes in two modes:

* **raising** (the default, no collector): the first malformed command
  raises :class:`CifSyntaxError` — now carrying a typed
  :class:`~repro.diagnostics.Diagnostic` with a stable ``CIF0xx`` code and
  a :class:`~repro.diagnostics.SourceSpan` locating the offending command;
* **recovering** (pass a :class:`~repro.diagnostics.DiagnosticCollector`):
  the parser resynchronizes at the next statement boundary (CIF commands
  are semicolon-terminated), **poisons** the symbol definition containing
  the error (it is dropped from the result, and calls to it are skipped
  with a warning), and returns the partial library together with every
  diagnostic found — so one bad cell no longer destroys a whole-chip read.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from typing import Dict, List, Optional, Set, Tuple

from repro.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    DiagnosticError,
    Severity,
    SourceSpan,
)
from repro.geometry.path import Path
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.transform import Orientation, Transform
from repro.layout.cell import Cell
from repro.layout.library import Library
from repro.layout.shapes import Shape
from repro.technology.technology import Technology
from repro.technology.nmos import NMOS


class CifSyntaxError(DiagnosticError, ValueError):
    """Raised when CIF text cannot be parsed (raising mode only)."""

    default_code = "CIF000"


class _Recover(Exception):
    """Internal resynchronization signal (recovering mode only)."""


_ROTATION_TO_ORIENTATION = {
    (1, 0): Orientation.R0,
    (0, 1): Orientation.R90,
    (-1, 0): Orientation.R180,
    (0, -1): Orientation.R270,
}


def _strip_comments(text: str) -> str:
    """Blank parenthesised comments, preserving offsets and newlines."""
    return re.sub(r"\([^)]*\)",
                  lambda m: re.sub(r"[^\n]", " ", m.group()), text)


class _Command:
    """One semicolon-terminated command with its source location."""

    __slots__ = ("text", "span")

    def __init__(self, text: str, span: SourceSpan):
        self.text = text
        self.span = span


def _scan_commands(text: str) -> List[_Command]:
    """Split comment-stripped text on semicolons, keeping source spans."""
    stripped = _strip_comments(text)
    line_starts = [0]
    for index, char in enumerate(stripped):
        if char == "\n":
            line_starts.append(index + 1)

    def locate(offset: int) -> Tuple[int, int]:
        line_index = bisect_right(line_starts, offset) - 1
        return line_index + 1, offset - line_starts[line_index] + 1

    commands: List[_Command] = []
    offset = 0
    for chunk in stripped.split(";"):
        body = chunk.strip()
        if body:
            start = offset + len(chunk) - len(chunk.lstrip())
            end = start + len(body) - 1
            line, column = locate(start)
            end_line, end_column = locate(end)
            span = SourceSpan(line, column, end_line, end_column)
        else:
            line, column = locate(offset)
            span = SourceSpan(line, column)
        commands.append(_Command(body, span))
        offset += len(chunk) + 1
    return commands


class CifParser:
    """Parses CIF text into a library."""

    def __init__(self, technology: Optional[Technology] = None):
        self.technology = technology if technology is not None else NMOS

    def parse(self, text: str, library_name: str = "parsed",
              collector: Optional[DiagnosticCollector] = None) -> Library:
        """Parse ``text``; with a ``collector``, recover instead of raising."""
        return _Run(self.technology, collector).parse(text, library_name)

    # Back-compat shims: helpers that used to live on the parser.

    def _resolve_layer(self, cif_name: str) -> str:
        layer = self.technology.layers.by_cif_name(cif_name)
        if layer is not None:
            return layer.name
        return cif_name


class _Run:
    """One parse: holds the per-parse state and the error policy."""

    def __init__(self, technology: Technology,
                 collector: Optional[DiagnosticCollector]):
        self.technology = technology
        self.collector = collector
        self.recovering = collector is not None
        self.cells_by_id: Dict[int, Cell] = {}
        self.poisoned: Set[int] = set()
        self.deferred_calls: List[Tuple[Cell, Optional[int], int, Transform]] = []
        self.top_level_calls: List[Tuple[int, Transform, SourceSpan]] = []
        self.current_cell: Optional[Cell] = None
        self.current_id: Optional[int] = None
        self.current_layer: str = ""
        self.span: SourceSpan = SourceSpan(1, 1)

    # -- error policy -------------------------------------------------------

    def error(self, code: str, message: str,
              span: Optional[SourceSpan] = None,
              hint: Optional[str] = None) -> "Exception":
        """Report one error: raise (default) or record, poison and resync."""
        diagnostic = Diagnostic(Severity.ERROR, code, message,
                                span or self.span, hint, "cif")
        if not self.recovering:
            raise CifSyntaxError(message, diagnostic)
        self.collector.add(diagnostic)
        self._poison_current()
        raise _Recover()

    def warn(self, code: str, message: str,
             span: Optional[SourceSpan] = None) -> None:
        diagnostic = Diagnostic(Severity.WARNING, code, message,
                                span or self.span, None, "cif")
        if self.recovering:
            self.collector.add(diagnostic)

    def _poison_current(self) -> None:
        if self.current_id is not None:
            self.poisoned.add(self.current_id)

    # -- main loop ----------------------------------------------------------

    def parse(self, text: str, library_name: str) -> Library:
        library = Library(library_name, self.technology)
        ended = False
        for command in _scan_commands(text):
            raw = command.text
            if not raw or ended:
                if raw and ended:
                    break
                continue
            self.span = command.span
            try:
                ended = self._dispatch(raw)
            except _Recover:
                continue
        self._finish(ended)
        self._link_calls()
        for cell_id, cell in self.cells_by_id.items():
            if cell_id in self.poisoned:
                continue
            if cell.name not in library:
                library.add_cell(cell)
        self._materialise_top_calls(library)
        return library

    def _dispatch(self, raw: str) -> bool:
        """Process one command; returns True when ``E`` ends the file."""
        command, args = self._split_command(raw)

        if command == "DS":
            if self.current_cell is not None:
                # In recovery, close (and poison) the unterminated symbol so
                # the new definition can still be read.
                if self.recovering:
                    self._poison_current()
                    self.cells_by_id[self.current_id] = self.current_cell
                    self.current_cell = None
                    self.current_id = None
                    self.warn("CIF002", "nested DS without DF: previous "
                              "symbol poisoned")
                else:
                    self.error("CIF002", "nested DS without DF")
            values = self._ints(args)
            if not values:
                self.error("CIF003", "DS requires a symbol number")
            self.current_id = values[0]
            if self.current_id in self.cells_by_id:
                self.warn("CIF019",
                          f"symbol {self.current_id} redefined")
            self.current_cell = Cell(f"symbol_{self.current_id}")
            self.current_layer = ""
        elif command == "DF":
            if self.current_cell is None:
                self.error("CIF004", "DF without matching DS")
            self.cells_by_id[self.current_id] = self.current_cell
            self.current_cell = None
            self.current_id = None
        elif command == "9":
            if self.current_cell is None:
                self.error("CIF005",
                           "symbol name (9) outside a symbol definition")
            if args:
                self.current_cell.name = args[0]
        elif command == "94":
            if self.current_cell is None:
                return False
            if len(args) < 3:
                self.error("CIF006", f"malformed label command: {raw!r}")
            label_text = args[0]
            x, y = self._ints(args[1:3])
            layer_arg = args[3] if len(args) > 3 else ""
            layer_name = self._resolve_layer(layer_arg) if layer_arg else ""
            self.current_cell.add_label(label_text, Point(x, y), layer_name)
        elif command == "L":
            if not args:
                self.error("CIF007", "L command requires a layer name")
            self.current_layer = self._resolve_layer(args[0])
        elif command == "B":
            self._require_cell(raw)
            self._parse_box(args, raw)
        elif command == "P":
            self._require_cell(raw)
            values = self._ints(args)
            if len(values) < 6 or len(values) % 2:
                self.error("CIF009", f"malformed polygon: {raw!r}")
            points = [Point(values[i], values[i + 1])
                      for i in range(0, len(values), 2)]
            try:
                shape = Shape(self.current_layer, Polygon(points))
            except ValueError as exc:
                self.error("CIF009", f"malformed polygon: {raw!r} ({exc})")
            self.current_cell.add_shape(shape)
        elif command == "W":
            self._require_cell(raw)
            values = self._ints(args)
            if len(values) < 5 or (len(values) - 1) % 2:
                self.error("CIF010", f"malformed wire: {raw!r}")
            width = values[0]
            points = [Point(values[i], values[i + 1])
                      for i in range(1, len(values), 2)]
            try:
                shape = Shape(self.current_layer, Path(points, width))
            except ValueError as exc:
                self.error("CIF010", f"malformed wire: {raw!r} ({exc})")
            self.current_cell.add_shape(shape)
        elif command == "R":
            # Round flash: approximate as a square box of the same diameter.
            self._require_cell(raw)
            values = self._ints(args)
            if len(values) != 3:
                self.error("CIF011", f"malformed round flash: {raw!r}")
            diameter, cx, cy = values
            if diameter <= 0:
                self.error("CIF011",
                           f"round flash with non-positive diameter: {raw!r}")
            half = diameter // 2
            rect = Rect(cx - half, cy - half,
                        cx - half + diameter, cy - half + diameter)
            self.current_cell.add_shape(Shape(self.current_layer, rect))
        elif command == "C":
            call_id, transform = self._parse_call(args, raw)
            if self.current_cell is not None:
                self.deferred_calls.append(
                    (self.current_cell, self.current_id, call_id, transform))
            else:
                self.top_level_calls.append((call_id, transform, self.span))
        elif command == "E":
            return True
        elif command == "DD":
            values = self._ints(args)
            threshold = values[0] if values else 0
            self.cells_by_id = {k: v for k, v in self.cells_by_id.items()
                                if k < threshold}
        elif command.isdigit():
            # Unknown user extension: ignored per the CIF specification.
            pass
        else:
            self.error("CIF014", f"unrecognised CIF command: {raw!r}")
        return False

    def _finish(self, ended: bool) -> None:
        if self.current_cell is not None:
            if self.recovering:
                self._poison_current()
                if self.current_id is not None:
                    self.cells_by_id[self.current_id] = self.current_cell
                self.collector.add(Diagnostic(
                    Severity.ERROR, "CIF015",
                    "unterminated symbol definition (missing DF)",
                    self.span, "the open symbol was poisoned", "cif"))
                self.current_cell = None
                self.current_id = None
            else:
                raise CifSyntaxError(
                    "unterminated symbol definition (missing DF)",
                    Diagnostic(Severity.ERROR, "CIF015",
                               "unterminated symbol definition (missing DF)",
                               self.span, None, "cif"))
        if not ended:
            if self.recovering:
                self.collector.add(Diagnostic(
                    Severity.ERROR, "CIF016",
                    "missing E command at end of CIF file",
                    self.span, "the file may be truncated", "cif"))
            else:
                raise CifSyntaxError(
                    "missing E command at end of CIF file",
                    Diagnostic(Severity.ERROR, "CIF016",
                               "missing E command at end of CIF file",
                               self.span, "the file may be truncated", "cif"))

    # -- linking ------------------------------------------------------------

    def _link_calls(self) -> None:
        for parent, parent_id, call_id, transform in self.deferred_calls:
            if parent_id in self.poisoned:
                continue
            child = self.cells_by_id.get(call_id)
            if child is None:
                if self.recovering:
                    self.collector.add(Diagnostic(
                        Severity.ERROR, "CIF017",
                        f"call to undefined symbol {call_id}",
                        None, f"instance dropped from {parent.name!r}", "cif"))
                    continue
                raise CifSyntaxError(
                    f"call to undefined symbol {call_id}",
                    Diagnostic(Severity.ERROR, "CIF017",
                               f"call to undefined symbol {call_id}",
                               None, None, "cif"))
            if call_id in self.poisoned:
                self.warn("CIF020",
                          f"call to poisoned symbol {call_id} skipped "
                          f"in {parent.name!r}", None)
                continue
            parent.add_instance(child, transform)

    def _materialise_top_calls(self, library: Library) -> None:
        # Represent top-level calls by a synthetic wrapper only when a call
        # carries a non-identity transform; a plain "C id;" just marks the top.
        for call_id, transform, span in self.top_level_calls:
            target = self.cells_by_id.get(call_id)
            if target is None or call_id in self.poisoned:
                message = (f"top-level call to undefined symbol {call_id}"
                           if target is None else
                           f"top-level call to poisoned symbol {call_id}")
                if self.recovering:
                    self.collector.add(Diagnostic(
                        Severity.ERROR, "CIF018", message, span, None, "cif"))
                    continue
                raise CifSyntaxError(
                    message,
                    Diagnostic(Severity.ERROR, "CIF018", message, span,
                               None, "cif"))
            if not transform.is_identity:
                wrapper = library.new_cell(f"top_{target.name}")
                wrapper.add_instance(target, transform)

    # -- helpers ------------------------------------------------------------

    def _ints(self, parts: List[str]) -> List[int]:
        values = []
        for part in parts:
            try:
                values.append(int(part))
            except ValueError:
                self.error("CIF001", f"expected integer, got {part!r}")
        return values

    def _split_command(self, raw: str) -> Tuple[str, List[str]]:
        parts = raw.replace(",", " ").split()
        keyword = parts[0].upper()
        if keyword[0].isdigit() and not keyword.isdigit():
            # e.g. "94label" is not legal in our writer; treat as syntax error.
            self.error("CIF021", f"malformed command: {raw!r}")
        if keyword in ("DS", "DF", "DD"):
            return keyword, parts[1:]
        if keyword[0] in "BPWRLCE9":
            # Single-letter commands may have the first argument glued on
            # (e.g. "B4 6 0 0") per the CIF grammar; handle the common case.
            if len(keyword) > 1 and keyword[0] in "BPWRLC" and keyword[1:].lstrip("-").isdigit():
                return keyword[0], [keyword[1:]] + parts[1:]
            return keyword, parts[1:]
        return keyword, parts[1:]

    def _require_cell(self, raw: str) -> None:
        if self.current_cell is None:
            self.error("CIF008",
                       f"geometry outside a symbol definition: {raw!r}")

    def _resolve_layer(self, cif_name: str) -> str:
        layer = self.technology.layers.by_cif_name(cif_name)
        if layer is not None:
            return layer.name
        return cif_name

    def _parse_box(self, args: List[str], raw: str) -> None:
        values = self._ints(args)
        if len(values) not in (4, 6):
            self.error("CIF012", f"malformed box: {raw!r}")
        width, height, cx, cy = values[:4]
        if len(values) == 6:
            direction = (values[4], values[5])
            if direction not in ((1, 0), (0, 1), (-1, 0), (0, -1)):
                self.error("CIF012",
                           f"non-Manhattan box direction unsupported: {raw!r}")
            if direction in ((0, 1), (0, -1)):
                width, height = height, width
        if width <= 0 or height <= 0:
            self.error("CIF012", f"box with non-positive size: {raw!r}")
        x1 = cx - width // 2
        y1 = cy - height // 2
        rect = Rect(x1, y1, x1 + width, y1 + height)
        self.current_cell.add_shape(Shape(self.current_layer, rect))

    def _parse_call(self, args: List[str], raw: str) -> Tuple[int, Transform]:
        if not args:
            self.error("CIF013", f"call without symbol number: {raw!r}")
        try:
            call_id = int(args[0])
        except ValueError:
            self.error("CIF013",
                       f"call with non-integer symbol number: {raw!r}")
        transform = Transform.identity()
        index = 1
        while index < len(args):
            token = args[index].upper()
            if token == "T":
                values = self._ints(args[index + 1:index + 3])
                if len(values) != 2:
                    self.error("CIF013", f"malformed translate in call: {raw!r}")
                transform = transform.then(Transform.translate(values[0], values[1]))
                index += 3
            elif token == "R":
                values = self._ints(args[index + 1:index + 3])
                if len(values) != 2:
                    self.error("CIF013", f"malformed rotate in call: {raw!r}")
                orientation = _ROTATION_TO_ORIENTATION.get(
                    (_sign(values[0]), _sign(values[1])))
                if orientation is None:
                    self.error("CIF013",
                               f"non-Manhattan rotation unsupported: {raw!r}")
                transform = transform.then(Transform(orientation, Point(0, 0)))
                index += 3
            elif token == "MX":
                transform = transform.then(Transform.mirror_x())
                index += 1
            elif token == "MY":
                transform = transform.then(Transform.mirror_y())
                index += 1
            else:
                self.error("CIF013",
                           f"unrecognised call transform {token!r} in {raw!r}")
        return call_id, transform


def _sign(value: int) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


def parse_cif(text: str, technology: Optional[Technology] = None,
              library_name: str = "parsed",
              collector: Optional[DiagnosticCollector] = None) -> Library:
    """Parse CIF text into a library (convenience wrapper).

    Pass a :class:`~repro.diagnostics.DiagnosticCollector` to recover from
    malformed commands (poisoning the affected symbols) instead of raising
    on the first error.
    """
    return CifParser(technology).parse(text, library_name, collector)
