"""CIF 2.0 parser.

Parses the subset of CIF emitted by :mod:`repro.cif.writer` plus the common
constructs found in era files: comments in parentheses, symbol definitions
``DS``/``DF``, boxes, polygons, wires, round flashes, layer selection, calls
with arbitrary ``T``/``R``/``MX``/``MY`` transform lists, the ``9`` symbol
name and ``94`` label user extensions, and the terminating ``E``.

The parser rebuilds a :class:`~repro.layout.library.Library`; geometry
emitted with the writer's default scale convention round-trips exactly.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.geometry.path import Path
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.transform import Orientation, Transform
from repro.layout.cell import Cell
from repro.layout.library import Library
from repro.layout.shapes import Shape
from repro.technology.technology import Technology
from repro.technology.nmos import NMOS


class CifSyntaxError(ValueError):
    """Raised when CIF text cannot be parsed."""


_ROTATION_TO_ORIENTATION = {
    (1, 0): Orientation.R0,
    (0, 1): Orientation.R90,
    (-1, 0): Orientation.R180,
    (0, -1): Orientation.R270,
}


def _strip_comments(text: str) -> str:
    """Remove parenthesised comments (CIF comments do not nest per the spec)."""
    return re.sub(r"\([^)]*\)", " ", text)


def _split_commands(text: str) -> List[str]:
    """Split on semicolons; CIF commands are semicolon terminated."""
    return [command.strip() for command in text.split(";")]


def _ints(parts: List[str]) -> List[int]:
    values = []
    for part in parts:
        try:
            values.append(int(part))
        except ValueError as exc:
            raise CifSyntaxError(f"expected integer, got {part!r}") from exc
    return values


class CifParser:
    """Parses CIF text into a library."""

    def __init__(self, technology: Optional[Technology] = None):
        self.technology = technology if technology is not None else NMOS

    def parse(self, text: str, library_name: str = "parsed") -> Library:
        library = Library(library_name, self.technology)
        commands = _split_commands(_strip_comments(text))

        cells_by_id: Dict[int, Cell] = {}
        deferred_calls: List[Tuple[Cell, int, Transform]] = []
        top_level_calls: List[Tuple[int, Transform]] = []

        current_cell: Optional[Cell] = None
        current_id: Optional[int] = None
        current_layer: str = ""
        anonymous_counter = 0
        ended = False

        for raw in commands:
            if not raw or ended:
                if raw and ended:
                    break
                continue
            command, args = self._split_command(raw)

            if command == "DS":
                if current_cell is not None:
                    raise CifSyntaxError("nested DS without DF")
                values = _ints(args)
                if not values:
                    raise CifSyntaxError("DS requires a symbol number")
                current_id = values[0]
                anonymous_counter += 1
                current_cell = Cell(f"symbol_{current_id}")
                current_layer = ""
            elif command == "DF":
                if current_cell is None:
                    raise CifSyntaxError("DF without matching DS")
                cells_by_id[current_id] = current_cell
                current_cell = None
                current_id = None
            elif command == "9":
                if current_cell is None:
                    raise CifSyntaxError("symbol name (9) outside a symbol definition")
                if args:
                    current_cell.name = args[0]
            elif command == "94":
                if current_cell is None:
                    continue
                if len(args) < 3:
                    raise CifSyntaxError(f"malformed label command: {raw!r}")
                label_text = args[0]
                x, y = _ints(args[1:3])
                layer_arg = args[3] if len(args) > 3 else ""
                layer_name = self._resolve_layer(layer_arg) if layer_arg else ""
                current_cell.add_label(label_text, Point(x, y), layer_name)
            elif command == "L":
                if not args:
                    raise CifSyntaxError("L command requires a layer name")
                current_layer = self._resolve_layer(args[0])
            elif command == "B":
                self._require_cell(current_cell, raw)
                self._parse_box(current_cell, current_layer, args, raw)
            elif command == "P":
                self._require_cell(current_cell, raw)
                values = _ints(args)
                if len(values) < 6 or len(values) % 2:
                    raise CifSyntaxError(f"malformed polygon: {raw!r}")
                points = [Point(values[i], values[i + 1]) for i in range(0, len(values), 2)]
                current_cell.add_shape(Shape(current_layer, Polygon(points)))
            elif command == "W":
                self._require_cell(current_cell, raw)
                values = _ints(args)
                if len(values) < 5 or (len(values) - 1) % 2:
                    raise CifSyntaxError(f"malformed wire: {raw!r}")
                width = values[0]
                points = [Point(values[i], values[i + 1]) for i in range(1, len(values), 2)]
                current_cell.add_shape(Shape(current_layer, Path(points, width)))
            elif command == "R":
                # Round flash: approximate as a square box of the same diameter.
                self._require_cell(current_cell, raw)
                values = _ints(args)
                if len(values) != 3:
                    raise CifSyntaxError(f"malformed round flash: {raw!r}")
                diameter, cx, cy = values
                half = diameter // 2
                rect = Rect(cx - half, cy - half, cx - half + diameter, cy - half + diameter)
                current_cell.add_shape(Shape(current_layer, rect))
            elif command == "C":
                call_id, transform = self._parse_call(args, raw)
                if current_cell is not None:
                    deferred_calls.append((current_cell, call_id, transform))
                else:
                    top_level_calls.append((call_id, transform))
            elif command == "E":
                ended = True
            elif command == "DD":
                values = _ints(args)
                threshold = values[0] if values else 0
                cells_by_id = {k: v for k, v in cells_by_id.items() if k < threshold}
            elif command.isdigit():
                # Unknown user extension: ignored per the CIF specification.
                continue
            else:
                raise CifSyntaxError(f"unrecognised CIF command: {raw!r}")

        if current_cell is not None:
            raise CifSyntaxError("unterminated symbol definition (missing DF)")
        if not ended:
            raise CifSyntaxError("missing E command at end of CIF file")

        self._link_calls(cells_by_id, deferred_calls)
        for cell in cells_by_id.values():
            if cell.name not in library:
                library.add_cell(cell)

        # Represent top-level calls by a synthetic wrapper only when a call
        # carries a non-identity transform; a plain "C id;" just marks the top.
        for call_id, transform in top_level_calls:
            target = cells_by_id.get(call_id)
            if target is None:
                raise CifSyntaxError(f"top-level call to undefined symbol {call_id}")
            if not transform.is_identity:
                wrapper = library.new_cell(f"top_{target.name}")
                wrapper.add_instance(target, transform)
        return library

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _split_command(raw: str) -> Tuple[str, List[str]]:
        parts = raw.replace(",", " ").split()
        keyword = parts[0].upper()
        if keyword[0].isdigit() and not keyword.isdigit():
            # e.g. "94label" is not legal in our writer; treat as syntax error.
            raise CifSyntaxError(f"malformed command: {raw!r}")
        if keyword in ("DS", "DF", "DD"):
            return keyword, parts[1:]
        if keyword[0] in "BPWRLCE9":
            # Single-letter commands may have the first argument glued on
            # (e.g. "B4 6 0 0") per the CIF grammar; handle the common case.
            if len(keyword) > 1 and keyword[0] in "BPWRLC" and keyword[1:].lstrip("-").isdigit():
                return keyword[0], [keyword[1:]] + parts[1:]
            return keyword, parts[1:]
        return keyword, parts[1:]

    @staticmethod
    def _require_cell(cell: Optional[Cell], raw: str) -> None:
        if cell is None:
            raise CifSyntaxError(f"geometry outside a symbol definition: {raw!r}")

    def _resolve_layer(self, cif_name: str) -> str:
        layer = self.technology.layers.by_cif_name(cif_name)
        if layer is not None:
            return layer.name
        return cif_name

    def _parse_box(self, cell: Cell, layer: str, args: List[str], raw: str) -> None:
        values = _ints(args)
        if len(values) not in (4, 6):
            raise CifSyntaxError(f"malformed box: {raw!r}")
        width, height, cx, cy = values[:4]
        if len(values) == 6:
            direction = (values[4], values[5])
            if direction not in ((1, 0), (0, 1), (-1, 0), (0, -1)):
                raise CifSyntaxError(f"non-Manhattan box direction unsupported: {raw!r}")
            if direction in ((0, 1), (0, -1)):
                width, height = height, width
        if width <= 0 or height <= 0:
            raise CifSyntaxError(f"box with non-positive size: {raw!r}")
        x1 = cx - width // 2
        y1 = cy - height // 2
        rect = Rect(x1, y1, x1 + width, y1 + height)
        cell.add_shape(Shape(layer, rect))

    def _parse_call(self, args: List[str], raw: str) -> Tuple[int, Transform]:
        if not args:
            raise CifSyntaxError(f"call without symbol number: {raw!r}")
        try:
            call_id = int(args[0])
        except ValueError as exc:
            raise CifSyntaxError(f"call with non-integer symbol number: {raw!r}") from exc
        transform = Transform.identity()
        index = 1
        while index < len(args):
            token = args[index].upper()
            if token == "T":
                values = _ints(args[index + 1:index + 3])
                if len(values) != 2:
                    raise CifSyntaxError(f"malformed translate in call: {raw!r}")
                transform = transform.then(Transform.translate(values[0], values[1]))
                index += 3
            elif token == "R":
                values = _ints(args[index + 1:index + 3])
                if len(values) != 2:
                    raise CifSyntaxError(f"malformed rotate in call: {raw!r}")
                orientation = _ROTATION_TO_ORIENTATION.get((_sign(values[0]), _sign(values[1])))
                if orientation is None:
                    raise CifSyntaxError(f"non-Manhattan rotation unsupported: {raw!r}")
                transform = transform.then(Transform(orientation, Point(0, 0)))
                index += 3
            elif token == "MX":
                transform = transform.then(Transform.mirror_x())
                index += 1
            elif token == "MY":
                transform = transform.then(Transform.mirror_y())
                index += 1
            else:
                raise CifSyntaxError(f"unrecognised call transform {token!r} in {raw!r}")
        return call_id, transform

    @staticmethod
    def _link_calls(cells_by_id: Dict[int, Cell],
                    deferred_calls: List[Tuple[Cell, int, Transform]]) -> None:
        for parent, call_id, transform in deferred_calls:
            child = cells_by_id.get(call_id)
            if child is None:
                raise CifSyntaxError(f"call to undefined symbol {call_id}")
            parent.add_instance(child, transform)


def _sign(value: int) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


def parse_cif(text: str, technology: Optional[Technology] = None,
              library_name: str = "parsed") -> Library:
    """Parse CIF text into a library (convenience wrapper)."""
    return CifParser(technology).parse(text, library_name)
