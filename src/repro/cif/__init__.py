"""Caltech Intermediate Form (CIF) backend.

CIF is the manufacturing interface the paper points at (Sproull & Lyon,
reference [8]): the textual form in which compiled layout is handed to mask
making.  This package provides a writer that emits CIF 2.0 from a
:class:`~repro.layout.library.Library` and a parser that reads CIF text back
into a library, so the interchange can be verified by round-tripping
(experiment E10).
"""

from repro.cif.writer import CifWriter, write_cif, cell_to_cif
from repro.cif.parser import CifParser, parse_cif, CifSyntaxError

__all__ = [
    "CifWriter",
    "write_cif",
    "cell_to_cif",
    "CifParser",
    "parse_cif",
    "CifSyntaxError",
]
