"""The Technology object: layers + rules + lambda scale factor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.technology.layers import Layer, LayerSet
from repro.technology.rules import RuleSet


@dataclass
class Technology:
    """A fabrication process as seen by the compiler.

    Attributes
    ----------
    name:
        Short process name, e.g. ``"nmos-mead-conway"``.
    lambda_nm:
        The physical size of one lambda in nanometres.  All layout in the
        compiler is in integer lambda; CIF output scales by this value
        (CIF distances are in centimicrons, i.e. 10 nm units).
    layers:
        The mask layer set.
    rules:
        The lambda design-rule set used by the DRC.
    properties:
        Free-form per-technology electrical parameters (sheet resistances,
        gate capacitance per square, inverter pair delay) used by the
        timing estimator and the metrics reports.
    """

    name: str
    lambda_nm: int
    layers: LayerSet
    rules: RuleSet
    properties: Dict[str, float] = field(default_factory=dict)

    @property
    def cif_scale(self) -> int:
        """Centimicrons per lambda for CIF output (1 centimicron = 10 nm)."""
        if self.lambda_nm % 10 != 0:
            raise ValueError("lambda must be a multiple of 10 nm for exact CIF output")
        return self.lambda_nm // 10

    def layer(self, name: str) -> Layer:
        """Look up a layer by long name (raises ``KeyError`` if missing)."""
        return self.layers.by_name(name)

    def has_layer(self, name: str) -> bool:
        return name in self.layers

    def property(self, key: str, default: Optional[float] = None) -> float:
        if key in self.properties:
            return self.properties[key]
        if default is None:
            raise KeyError(f"technology {self.name!r} has no property {key!r}")
        return default

    def __repr__(self) -> str:
        return (
            f"Technology({self.name!r}, lambda={self.lambda_nm}nm, "
            f"{len(self.layers)} layers, {len(self.rules)} rules)"
        )
