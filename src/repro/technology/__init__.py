"""Technology descriptions: mask layers and lambda-based design rules.

The silicon compiler is retargetable across processes by describing each
process as a :class:`Technology`: a set of mask layers (with their CIF layer
names), a lambda value in nanometres, and a table of dimensionless design
rules expressed in lambda, following the Mead & Conway scalable-rules
methodology the paper builds on.
"""

from repro.technology.layers import Layer, LayerPurpose, LayerSet
from repro.technology.rules import RuleKind, DesignRule, RuleSet
from repro.technology.technology import Technology
from repro.technology.nmos import nmos_technology, NMOS
from repro.technology.cmos import cmos_technology, CMOS

__all__ = [
    "Layer",
    "LayerPurpose",
    "LayerSet",
    "RuleKind",
    "DesignRule",
    "RuleSet",
    "Technology",
    "nmos_technology",
    "NMOS",
    "cmos_technology",
    "CMOS",
]
