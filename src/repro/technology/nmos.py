"""The Mead & Conway NMOS technology.

This is the process the 1979 silicon-compilation work targeted: a single
metal layer, polysilicon gates, n-diffusion, depletion-mode loads selected
by an implant mask, buried contacts and an overglass cut layer.  The design
rules are the published lambda rules from *Introduction to VLSI Systems*.
"""

from __future__ import annotations

from repro.technology.layers import Layer, LayerPurpose, LayerSet
from repro.technology.rules import DesignRule, RuleKind, RuleSet
from repro.technology.technology import Technology

# Long layer names used throughout the compiler.
DIFF = "diffusion"
POLY = "poly"
METAL = "metal"
CONTACT = "contact"
IMPLANT = "implant"
BURIED = "buried"
OVERGLASS = "overglass"
LABEL = "label"


def _nmos_layers() -> LayerSet:
    return LayerSet(
        [
            Layer(DIFF, "ND", LayerPurpose.DIFFUSION, gds_number=1),
            Layer(POLY, "NP", LayerPurpose.POLY, gds_number=2),
            Layer(CONTACT, "NC", LayerPurpose.CONTACT, gds_number=3),
            Layer(METAL, "NM", LayerPurpose.METAL, gds_number=4),
            Layer(IMPLANT, "NI", LayerPurpose.IMPLANT, gds_number=5),
            Layer(BURIED, "NB", LayerPurpose.BURIED, gds_number=6),
            Layer(OVERGLASS, "NG", LayerPurpose.OVERGLASS, gds_number=7),
            Layer(LABEL, "XL", LayerPurpose.LABEL, gds_number=63),
        ]
    )


def _nmos_rules() -> RuleSet:
    rules = RuleSet()
    # Width rules (lambda).
    rules.add(DesignRule(RuleKind.MIN_WIDTH, (DIFF,), 2, "W.D", "diffusion minimum width"))
    rules.add(DesignRule(RuleKind.MIN_WIDTH, (POLY,), 2, "W.P", "poly minimum width"))
    rules.add(DesignRule(RuleKind.MIN_WIDTH, (METAL,), 3, "W.M", "metal minimum width"))
    rules.add(DesignRule(RuleKind.MIN_WIDTH, (IMPLANT,), 4, "W.I", "implant minimum width"))
    # Spacing rules.
    rules.add(DesignRule(RuleKind.MIN_SPACING, (DIFF, DIFF), 3, "S.D.D", "diffusion to diffusion"))
    rules.add(DesignRule(RuleKind.MIN_SPACING, (POLY, POLY), 2, "S.P.P", "poly to poly"))
    rules.add(DesignRule(RuleKind.MIN_SPACING, (METAL, METAL), 3, "S.M.M", "metal to metal"))
    rules.add(DesignRule(RuleKind.MIN_SPACING, (POLY, DIFF), 1, "S.P.D", "poly to unrelated diffusion"))
    rules.add(DesignRule(RuleKind.MIN_SPACING, (CONTACT, CONTACT), 2, "S.C.C", "contact cut to contact cut"))
    # Transistor formation / extension rules.
    rules.add(DesignRule(RuleKind.MIN_EXTENSION, (POLY, DIFF), 2, "E.P.D", "poly gate extension past diffusion"))
    rules.add(DesignRule(RuleKind.MIN_EXTENSION, (DIFF, POLY), 2, "E.D.P", "diffusion source/drain extension past gate"))
    rules.add(DesignRule(RuleKind.MIN_ENCLOSURE, (IMPLANT, POLY), 2, "N.I.G", "implant surround of depletion gate"))
    # Contact rules.
    rules.add(DesignRule(RuleKind.EXACT_SIZE, (CONTACT,), 2, "C.SIZE", "contact cut is 2x2 lambda"))
    rules.add(DesignRule(RuleKind.MIN_ENCLOSURE, (METAL, CONTACT), 1, "N.M.C", "metal surround of contact"))
    rules.add(DesignRule(RuleKind.MIN_ENCLOSURE, (POLY, CONTACT), 1, "N.P.C", "poly surround of contact"))
    rules.add(DesignRule(RuleKind.MIN_ENCLOSURE, (DIFF, CONTACT), 1, "N.D.C", "diffusion surround of contact"))
    # Overglass (pad) rules: pads are large; minimum opening 100x100 lambda is
    # represented as a width rule on the overglass layer.
    rules.add(DesignRule(RuleKind.MIN_WIDTH, (OVERGLASS,), 100, "W.G", "overglass opening minimum width"))
    return rules


_NMOS_PROPERTIES = {
    # Electrical parameters from the Mead & Conway text, used for rough
    # delay/power estimation (not for matching absolute 1979 numbers).
    "sheet_resistance_diffusion": 10.0,   # ohms per square
    "sheet_resistance_poly": 50.0,        # ohms per square (could be 15-100)
    "sheet_resistance_metal": 0.03,       # ohms per square
    "gate_capacitance_per_sq_lambda": 0.01,  # arbitrary normalised unit
    "inverter_pair_delay_ns": 30.0,       # nominal 1979-era pair delay
    "pullup_pulldown_ratio": 4.0,         # k ratio for restoring logic (ground inputs)
    "pass_gate_ratio": 8.0,               # k ratio when driven through pass transistors
    # Parasitic extraction / static timing parameters (era-scale, not
    # calibrated to a specific 1979 process run; only ratios between designs
    # compiled in the same technology are meaningful).
    "area_cap_ff_per_sq_lambda_diffusion": 1.0,   # junction capacitance
    "area_cap_ff_per_sq_lambda_poly": 0.45,
    "area_cap_ff_per_sq_lambda_metal": 0.3,
    "fringe_cap_ff_per_lambda": 0.1,      # perimeter (fringe) capacitance
    "gate_cap_ff_per_sq_lambda": 2.8,     # thin-oxide capacitance over channels
    "pullup_resistance_ohm": 40000.0,     # depletion load, on
    "pulldown_resistance_ohm": 10000.0,   # enhancement device, on
    "pass_resistance_ohm": 15000.0,       # pass-transistor channel
}


def nmos_technology(lambda_nm: int = 2500) -> Technology:
    """Build the NMOS Mead & Conway technology.

    The default lambda of 2.5 micrometres (2500 nm) matches the era of the
    paper; any multiple of 10 nm is accepted so the same generators can be
    scaled (that is the entire point of lambda rules).
    """
    return Technology(
        name="nmos-mead-conway",
        lambda_nm=lambda_nm,
        layers=_nmos_layers(),
        rules=_nmos_rules(),
        properties=dict(_NMOS_PROPERTIES),
    )


#: Shared default instance (immutable use only).
NMOS = nmos_technology()
