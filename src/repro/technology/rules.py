"""Design rules expressed in lambda.

The Mead & Conway methodology abstracts a process into a handful of
dimensionless rules: minimum widths, minimum spacings (same-layer and
inter-layer), minimum enclosures (surrounds) and minimum extensions.  The
DRC engine in :mod:`repro.drc` interprets these rule records against a
flattened layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class RuleKind(Enum):
    """The geometric relation a rule constrains."""

    MIN_WIDTH = "min_width"
    MIN_SPACING = "min_spacing"
    MIN_ENCLOSURE = "min_enclosure"   # layer A must surround layer B by N
    MIN_EXTENSION = "min_extension"   # layer A must extend past layer B by N
    MIN_OVERLAP = "min_overlap"       # layers must overlap by at least N
    EXACT_SIZE = "exact_size"         # e.g. contact cuts are exactly 2x2 lambda


@dataclass(frozen=True)
class DesignRule:
    """One design rule.

    ``layers`` carries one layer name for width/size rules and two for
    spacing/enclosure/extension/overlap rules (ordered: the enclosing or
    extending layer first).
    """

    kind: RuleKind
    layers: Tuple[str, ...]
    value: int
    name: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        expected = 1 if self.kind in (RuleKind.MIN_WIDTH, RuleKind.EXACT_SIZE) else 2
        if len(self.layers) != expected:
            raise ValueError(
                f"rule {self.kind.value} expects {expected} layer(s), got {len(self.layers)}"
            )
        if self.value < 0:
            raise ValueError("rule value must be non-negative")

    @property
    def label(self) -> str:
        return self.name or f"{self.kind.value}({','.join(self.layers)})={self.value}"


class RuleSet:
    """A queryable collection of design rules."""

    def __init__(self, rules: Iterable[DesignRule] = ()):
        self._rules: List[DesignRule] = []
        self._index: Dict[Tuple[RuleKind, Tuple[str, ...]], DesignRule] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: DesignRule) -> None:
        key = (rule.kind, rule.layers)
        if key in self._index:
            raise ValueError(f"duplicate rule for {key}")
        self._index[key] = rule
        self._rules.append(rule)

    def __iter__(self) -> Iterator[DesignRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def lookup(self, kind: RuleKind, *layers: str) -> Optional[DesignRule]:
        """Find a rule; symmetric relations are looked up in both orders."""
        rule = self._index.get((kind, tuple(layers)))
        if rule is not None:
            return rule
        if kind in (RuleKind.MIN_SPACING, RuleKind.MIN_OVERLAP) and len(layers) == 2:
            return self._index.get((kind, (layers[1], layers[0])))
        return None

    def value(self, kind: RuleKind, *layers: str, default: Optional[int] = None) -> int:
        rule = self.lookup(kind, *layers)
        if rule is None:
            if default is None:
                raise KeyError(f"no rule {kind.value} for layers {layers}")
            return default
        return rule.value

    def min_width(self, layer: str, default: Optional[int] = None) -> int:
        return self.value(RuleKind.MIN_WIDTH, layer, default=default)

    def min_spacing(self, layer_a: str, layer_b: Optional[str] = None,
                    default: Optional[int] = None) -> int:
        second = layer_b if layer_b is not None else layer_a
        return self.value(RuleKind.MIN_SPACING, layer_a, second, default=default)

    def rules_of_kind(self, kind: RuleKind) -> List[DesignRule]:
        return [rule for rule in self._rules if rule.kind is kind]

    def rules_for_layer(self, layer: str) -> List[DesignRule]:
        return [rule for rule in self._rules if layer in rule.layers]
