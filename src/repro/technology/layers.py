"""Mask layers.

A layer pairs a human name with the short CIF layer name used in the
manufacturing interface (e.g. ``ND`` for NMOS diffusion, ``NP`` for
polysilicon) and a purpose classifying how the compiler and the verification
tools treat geometry on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional


class LayerPurpose(Enum):
    """Functional classification of a mask layer."""

    DIFFUSION = "diffusion"
    POLY = "poly"
    METAL = "metal"
    CONTACT = "contact"
    IMPLANT = "implant"
    WELL = "well"
    OVERGLASS = "overglass"
    BURIED = "buried"
    LABEL = "label"

    @property
    def is_conducting(self) -> bool:
        return self in (LayerPurpose.DIFFUSION, LayerPurpose.POLY, LayerPurpose.METAL)

    @property
    def is_drawn_mask(self) -> bool:
        return self is not LayerPurpose.LABEL


@dataclass(frozen=True, order=True)
class Layer:
    """A mask layer.

    ``name`` is the long name used throughout the compiler; ``cif_name`` is
    the short commentary-free name emitted into CIF ``L`` commands.
    """

    name: str
    cif_name: str
    purpose: LayerPurpose
    gds_number: int = 0

    def __str__(self) -> str:
        return self.name


class LayerSet:
    """An ordered collection of layers with lookup by either name."""

    def __init__(self, layers: Iterable[Layer]):
        self._layers: List[Layer] = list(layers)
        self._by_name: Dict[str, Layer] = {}
        self._by_cif: Dict[str, Layer] = {}
        for layer in self._layers:
            if layer.name in self._by_name:
                raise ValueError(f"duplicate layer name {layer.name!r}")
            if layer.cif_name in self._by_cif:
                raise ValueError(f"duplicate CIF layer name {layer.cif_name!r}")
            self._by_name[layer.name] = layer
            self._by_cif[layer.cif_name] = layer

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name or name in self._by_cif

    def by_name(self, name: str) -> Layer:
        if name in self._by_name:
            return self._by_name[name]
        raise KeyError(f"unknown layer {name!r}")

    def by_cif_name(self, cif_name: str) -> Optional[Layer]:
        return self._by_cif.get(cif_name)

    def get(self, name: str) -> Optional[Layer]:
        return self._by_name.get(name) or self._by_cif.get(name)

    def conducting_layers(self) -> List[Layer]:
        return [layer for layer in self._layers if layer.purpose.is_conducting]

    def names(self) -> List[str]:
        return [layer.name for layer in self._layers]
