"""A scalable single-metal CMOS technology.

Included to demonstrate that the compiler retargets across processes by
swapping the :class:`~repro.technology.technology.Technology` object, which
is the claim behind lambda-based rules.  The generators in this repository
primarily target NMOS (as the 1979 work did); the CMOS description is used
by retargeting tests and the ablation benchmarks.
"""

from __future__ import annotations

from repro.technology.layers import Layer, LayerPurpose, LayerSet
from repro.technology.rules import DesignRule, RuleKind, RuleSet
from repro.technology.technology import Technology

NWELL = "nwell"
ACTIVE = "active"
PSELECT = "pselect"
NSELECT = "nselect"
POLY = "poly"
CONTACT = "contact"
METAL = "metal"
OVERGLASS = "overglass"
LABEL = "label"


def _cmos_layers() -> LayerSet:
    return LayerSet(
        [
            Layer(NWELL, "CWN", LayerPurpose.WELL, gds_number=42),
            Layer(ACTIVE, "CAA", LayerPurpose.DIFFUSION, gds_number=43),
            Layer(PSELECT, "CSP", LayerPurpose.IMPLANT, gds_number=44),
            Layer(NSELECT, "CSN", LayerPurpose.IMPLANT, gds_number=45),
            Layer(POLY, "CPG", LayerPurpose.POLY, gds_number=46),
            Layer(CONTACT, "CC", LayerPurpose.CONTACT, gds_number=47),
            Layer(METAL, "CMF", LayerPurpose.METAL, gds_number=49),
            Layer(OVERGLASS, "COG", LayerPurpose.OVERGLASS, gds_number=52),
            Layer(LABEL, "XL", LayerPurpose.LABEL, gds_number=63),
        ]
    )


def _cmos_rules() -> RuleSet:
    rules = RuleSet()
    rules.add(DesignRule(RuleKind.MIN_WIDTH, (NWELL,), 10, "W.W", "well minimum width"))
    rules.add(DesignRule(RuleKind.MIN_WIDTH, (ACTIVE,), 3, "W.A", "active minimum width"))
    rules.add(DesignRule(RuleKind.MIN_WIDTH, (POLY,), 2, "W.P", "poly minimum width"))
    rules.add(DesignRule(RuleKind.MIN_WIDTH, (METAL,), 3, "W.M", "metal minimum width"))
    rules.add(DesignRule(RuleKind.MIN_SPACING, (NWELL, NWELL), 9, "S.W.W", "well to well"))
    rules.add(DesignRule(RuleKind.MIN_SPACING, (ACTIVE, ACTIVE), 3, "S.A.A", "active to active"))
    rules.add(DesignRule(RuleKind.MIN_SPACING, (POLY, POLY), 2, "S.P.P", "poly to poly"))
    rules.add(DesignRule(RuleKind.MIN_SPACING, (METAL, METAL), 3, "S.M.M", "metal to metal"))
    rules.add(DesignRule(RuleKind.MIN_SPACING, (POLY, ACTIVE), 1, "S.P.A", "poly to unrelated active"))
    rules.add(DesignRule(RuleKind.MIN_SPACING, (CONTACT, CONTACT), 2, "S.C.C", "contact to contact"))
    rules.add(DesignRule(RuleKind.MIN_EXTENSION, (POLY, ACTIVE), 2, "E.P.A", "gate extension past active"))
    rules.add(DesignRule(RuleKind.MIN_EXTENSION, (ACTIVE, POLY), 3, "E.A.P", "source/drain extension past gate"))
    rules.add(DesignRule(RuleKind.EXACT_SIZE, (CONTACT,), 2, "C.SIZE", "contact cut is 2x2 lambda"))
    rules.add(DesignRule(RuleKind.MIN_ENCLOSURE, (METAL, CONTACT), 1, "N.M.C", "metal surround of contact"))
    rules.add(DesignRule(RuleKind.MIN_ENCLOSURE, (POLY, CONTACT), 1, "N.P.C", "poly surround of contact"))
    rules.add(DesignRule(RuleKind.MIN_ENCLOSURE, (ACTIVE, CONTACT), 1, "N.A.C", "active surround of contact"))
    rules.add(DesignRule(RuleKind.MIN_ENCLOSURE, (NWELL, ACTIVE), 5, "N.W.A", "well surround of p-active"))
    rules.add(DesignRule(RuleKind.MIN_WIDTH, (OVERGLASS,), 100, "W.G", "overglass opening minimum width"))
    return rules


_CMOS_PROPERTIES = {
    "sheet_resistance_poly": 25.0,
    "sheet_resistance_metal": 0.05,
    "gate_capacitance_per_sq_lambda": 0.008,
    "inverter_pair_delay_ns": 10.0,
    # Parasitic extraction / static timing parameters (era-scale estimates).
    "area_cap_ff_per_sq_lambda_diffusion": 0.6,
    "area_cap_ff_per_sq_lambda_poly": 0.35,
    "area_cap_ff_per_sq_lambda_metal": 0.25,
    "fringe_cap_ff_per_lambda": 0.08,
    "gate_cap_ff_per_sq_lambda": 1.6,
    "pullup_resistance_ohm": 12000.0,
    "pulldown_resistance_ohm": 8000.0,
    "pass_resistance_ohm": 10000.0,
}


def cmos_technology(lambda_nm: int = 1500) -> Technology:
    """Build the scalable single-metal CMOS technology (default lambda 1.5 um)."""
    return Technology(
        name="cmos-scalable",
        lambda_nm=lambda_nm,
        layers=_cmos_layers(),
        rules=_cmos_rules(),
        properties=dict(_CMOS_PROPERTIES),
    )


#: Shared default instance (immutable use only).
CMOS = cmos_technology()
