"""Structural description: netlists, simulators and comparison.

The structural description is the middle of the paper's three views of a
design (structural / behavioural / physical).  A :class:`Module` is a set of
nets and component instances (logic gates, transistors, or other modules);
the package provides an event-driven gate-level simulator, a switch-level
simulator for transistor networks (as extracted from layout), and a netlist
isomorphism check used as the LVS step of physical verification.
"""

from repro.netlist.module import Module, Net, Instance, GateType, NetlistError
from repro.netlist.gate_sim import GateLevelSimulator, SimulationTrace
from repro.netlist.switch_sim import SwitchLevelSimulator, Transistor, TransistorKind, SwitchNetwork
from repro.netlist.compare import compare_netlists, ComparisonResult

__all__ = [
    "Module",
    "Net",
    "Instance",
    "GateType",
    "NetlistError",
    "GateLevelSimulator",
    "SimulationTrace",
    "SwitchLevelSimulator",
    "Transistor",
    "TransistorKind",
    "SwitchNetwork",
    "compare_netlists",
    "ComparisonResult",
]
