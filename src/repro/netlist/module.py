"""Structural netlists: modules, nets, gate and sub-module instances."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.diagnostics import Diagnostic, DiagnosticError, Severity


class NetlistError(DiagnosticError, ValueError):
    """Raised on malformed netlist construction (still a ``ValueError``)."""

    default_code = "NET000"


def _netlist_error(code: str, message: str) -> NetlistError:
    return NetlistError(message,
                        Diagnostic(Severity.ERROR, code, message,
                                   None, None, "netlist"))


class GateType(Enum):
    """Primitive component types understood by the gate-level simulator."""

    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    NOT = "not"
    XOR = "xor"
    XNOR = "xnor"
    BUF = "buf"
    MUX2 = "mux2"       # inputs: sel, a, b -> out = b if sel else a
    DFF = "dff"         # inputs: d (clocked by the simulator's cycle)
    LATCH = "latch"     # inputs: d, enable
    CONST0 = "const0"
    CONST1 = "const1"

    @property
    def is_sequential(self) -> bool:
        return self in (GateType.DFF, GateType.LATCH)


#: Number of data inputs each gate expects (None = any number >= 2).
_GATE_ARITY: Dict[GateType, Optional[int]] = {
    GateType.AND: None,
    GateType.OR: None,
    GateType.NAND: None,
    GateType.NOR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.MUX2: 3,
    GateType.DFF: 1,
    GateType.LATCH: 2,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}


@dataclass
class Net:
    """A named electrical node of a module."""

    name: str
    is_input: bool = False
    is_output: bool = False

    def __hash__(self) -> int:
        return hash(self.name)


def _data_port_index(port: str) -> Optional[int]:
    """The numeric index of an ``in<N>`` data port, or None for other ports."""
    if port.startswith("in") and port[2:].isdigit():
        return int(port[2:])
    return None


@dataclass
class Instance:
    """A placed component: a primitive gate or a sub-module.

    ``connections`` maps the component's port names to net names of the
    enclosing module.  For primitive gates the ports are ``in0..inN`` and
    ``out`` (plus ``enable`` for latches and ``sel``/``a``/``b`` for muxes).
    """

    name: str
    kind: Union[GateType, "Module"]
    connections: Dict[str, str] = field(default_factory=dict)

    @property
    def is_primitive(self) -> bool:
        return isinstance(self.kind, GateType)

    @property
    def kind_name(self) -> str:
        return self.kind.value if isinstance(self.kind, GateType) else self.kind.name

    def data_input_nets(self) -> List[str]:
        """Nets on the ``in<N>`` data ports, in numeric port order.

        A plain string sort would order ``in10`` before ``in2``; every
        consumer that cares about operand order (simulators, the compiled
        kernel) must go through this helper so wide gates evaluate their
        operands in declaration order.
        """
        indexed = [
            (index, net)
            for port, net in self.connections.items()
            if (index := _data_port_index(port)) is not None
        ]
        indexed.sort()
        return [net for _, net in indexed]

    def input_nets(self) -> List[str]:
        """All nets on non-output ports (data inputs plus sel/enable/...)."""
        return [net for port, net in self.connections.items() if port != "out"]


class Module:
    """A structural module: ports, nets and instances."""

    def __init__(self, name: str):
        self.name = name
        self.nets: Dict[str, Net] = {}
        self.instances: List[Instance] = []
        self._instance_names: Set[str] = set()

    # -- net and port management -----------------------------------------------------

    def add_net(self, name: str, is_input: bool = False, is_output: bool = False) -> Net:
        if name in self.nets:
            net = self.nets[name]
            net.is_input = net.is_input or is_input
            net.is_output = net.is_output or is_output
            return net
        net = Net(name, is_input, is_output)
        self.nets[name] = net
        return net

    def add_input(self, name: str) -> Net:
        return self.add_net(name, is_input=True)

    def add_inputs(self, *names: str) -> List[Net]:
        return [self.add_input(name) for name in names]

    def add_output(self, name: str) -> Net:
        return self.add_net(name, is_output=True)

    def add_outputs(self, *names: str) -> List[Net]:
        return [self.add_output(name) for name in names]

    def input_names(self) -> List[str]:
        return [net.name for net in self.nets.values() if net.is_input]

    def output_names(self) -> List[str]:
        return [net.name for net in self.nets.values() if net.is_output]

    def internal_names(self) -> List[str]:
        return [
            net.name for net in self.nets.values()
            if not net.is_input and not net.is_output
        ]

    # -- instances ----------------------------------------------------------------------

    def add_gate(self, gate: GateType, output: str, inputs: Sequence[str] = (),
                 name: Optional[str] = None, **extra_connections: str) -> Instance:
        """Add a primitive gate driving ``output`` from ``inputs``."""
        arity = _GATE_ARITY[gate]
        if arity is not None and gate not in (GateType.MUX2, GateType.LATCH):
            if len(inputs) != arity:
                raise _netlist_error(
                    "NET001",
                    f"{gate.value} expects {arity} input(s), got {len(inputs)}")
        elif arity is None and len(inputs) < 2:
            raise _netlist_error(
                "NET001", f"{gate.value} expects at least two inputs")
        connections: Dict[str, str] = {"out": output}
        for index, net_name in enumerate(inputs):
            connections[f"in{index}"] = net_name
        connections.update(extra_connections)
        for net_name in connections.values():
            self.add_net(net_name)
        instance_name = name or self._fresh_name(gate.value)
        instance = Instance(instance_name, gate, connections)
        self._register(instance)
        return instance

    def add_submodule(self, module: "Module", connections: Dict[str, str],
                      name: Optional[str] = None) -> Instance:
        """Instantiate another module; ``connections`` maps its ports to nets."""
        for port in module.input_names() + module.output_names():
            if port not in connections:
                raise _netlist_error(
                    "NET002",
                    f"instantiation of {module.name!r} misses connection "
                    f"for port {port!r}")
        for net_name in connections.values():
            self.add_net(net_name)
        instance_name = name or self._fresh_name(module.name)
        instance = Instance(instance_name, module, connections)
        self._register(instance)
        return instance

    def _register(self, instance: Instance) -> None:
        if instance.name in self._instance_names:
            raise _netlist_error(
                "NET003", f"duplicate instance name {instance.name!r}")
        self._instance_names.add(instance.name)
        self.instances.append(instance)

    def _fresh_name(self, prefix: str) -> str:
        index = len(self.instances)
        while f"{prefix}_{index}" in self._instance_names:
            index += 1
        return f"{prefix}_{index}"

    # -- queries -------------------------------------------------------------------------

    def gate_count(self, recursive: bool = True) -> int:
        """Number of primitive gates (optionally flattening sub-modules)."""
        total = 0
        for instance in self.instances:
            if instance.is_primitive:
                total += 1
            elif recursive:
                total += instance.kind.gate_count(recursive=True)
        return total

    def count_by_type(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for instance in self.instances:
            if instance.is_primitive:
                result[instance.kind.value] = result.get(instance.kind.value, 0) + 1
            else:
                for key, value in instance.kind.count_by_type().items():
                    result[key] = result.get(key, 0) + value
        return result

    def transistor_estimate(self) -> int:
        """NMOS transistor estimate: n-input NAND/NOR = n+1, inverter = 2, etc."""
        costs = {
            GateType.NOT: 2, GateType.BUF: 4, GateType.NAND: None, GateType.NOR: None,
            GateType.AND: None, GateType.OR: None, GateType.XOR: 8, GateType.XNOR: 8,
            GateType.MUX2: 4, GateType.DFF: 6, GateType.LATCH: 4,
            GateType.CONST0: 0, GateType.CONST1: 1,
        }
        total = 0
        for instance in self.instances:
            if not instance.is_primitive:
                total += instance.kind.transistor_estimate()
                continue
            gate = instance.kind
            fan_in = sum(1 for port in instance.connections if port.startswith("in"))
            if gate in (GateType.NAND, GateType.NOR):
                total += fan_in + 1
            elif gate in (GateType.AND, GateType.OR):
                total += fan_in + 3   # NAND/NOR plus an inverter
            else:
                total += costs[gate] or 0
        return total

    def driven_nets(self) -> Set[str]:
        driven: Set[str] = set()
        for instance in self.instances:
            if instance.is_primitive:
                if "out" in instance.connections:
                    driven.add(instance.connections["out"])
            else:
                for port, net in instance.connections.items():
                    if port in instance.kind.output_names():
                        driven.add(net)
        return driven

    def validate(self) -> List[str]:
        """Structural sanity checks; returns a list of diagnostics."""
        problems: List[str] = []
        driven = self.driven_nets()
        for net in self.nets.values():
            if net.is_output and net.name not in driven and net.name not in self.input_names():
                problems.append(f"output net {net.name!r} is never driven")
        for instance in self.instances:
            for port, net_name in instance.connections.items():
                if net_name not in self.nets:
                    problems.append(
                        f"instance {instance.name!r} port {port!r} references unknown net {net_name!r}"
                    )
        multiple = [name for name in driven
                    if sum(1 for inst in self.instances
                           if inst.is_primitive and inst.connections.get("out") == name) > 1]
        for name in multiple:
            problems.append(f"net {name!r} has multiple drivers")
        return problems

    def flattened(self, prefix: str = "") -> "Module":
        """A copy with all sub-module instances expanded to primitive gates."""
        flat = Module(self.name if not prefix else f"{self.name}_flat")
        for net in self.nets.values():
            flat.add_net(net.name, net.is_input, net.is_output)
        self._flatten_into(flat, "")
        return flat

    def _flatten_into(self, flat: "Module", prefix: str,
                      port_map: Optional[Dict[str, str]] = None) -> None:
        def resolve(net_name: str) -> str:
            if port_map is not None and net_name in port_map:
                return port_map[net_name]
            return f"{prefix}{net_name}" if prefix else net_name

        for instance in self.instances:
            if instance.is_primitive:
                connections = {port: resolve(net) for port, net in instance.connections.items()}
                for net_name in connections.values():
                    flat.add_net(net_name)
                flat._register(Instance(f"{prefix}{instance.name}", instance.kind, connections))
            else:
                child: Module = instance.kind
                child_port_map = {
                    port: resolve(net) for port, net in instance.connections.items()
                }
                child._flatten_into(flat, f"{prefix}{instance.name}.", child_port_map)

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, {len(self.nets)} nets, {len(self.instances)} instances, "
            f"{self.gate_count()} gates)"
        )
