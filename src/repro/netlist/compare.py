"""Netlist comparison (the LVS step).

Two comparisons are provided:

* :func:`compare_netlists` — structural comparison of two gate-level
  modules: same port signature, same gate census and a greedy
  signature-refinement isomorphism check of the connection graph.
* :func:`compare_switch_networks` — transistor-level comparison used to
  check an extracted network against a reference (device census per kind
  and per-node degree signatures).

Both return a :class:`ComparisonResult` carrying human-readable mismatch
diagnostics rather than just a boolean, because the interesting output of an
LVS run is *why* the descriptions disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netlist.module import GateType, Module
from repro.netlist.switch_sim import SwitchNetwork, TransistorKind


@dataclass
class ComparisonResult:
    """Outcome of a netlist comparison."""

    matches: bool
    mismatches: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.matches

    def explain(self) -> str:
        if self.matches:
            return "netlists match"
        return "netlists differ:\n  " + "\n  ".join(self.mismatches)


def compare_netlists(golden: Module, candidate: Module,
                     check_names: bool = False) -> ComparisonResult:
    """Compare two gate-level modules structurally."""
    golden_flat = golden.flattened()
    candidate_flat = candidate.flattened()
    mismatches: List[str] = []

    golden_inputs = sorted(golden_flat.input_names())
    candidate_inputs = sorted(candidate_flat.input_names())
    if golden_inputs != candidate_inputs:
        mismatches.append(f"input ports differ: {golden_inputs} vs {candidate_inputs}")
    golden_outputs = sorted(golden_flat.output_names())
    candidate_outputs = sorted(candidate_flat.output_names())
    if golden_outputs != candidate_outputs:
        mismatches.append(f"output ports differ: {golden_outputs} vs {candidate_outputs}")

    golden_census = golden_flat.count_by_type()
    candidate_census = candidate_flat.count_by_type()
    if golden_census != candidate_census:
        mismatches.append(f"gate census differs: {golden_census} vs {candidate_census}")

    if not mismatches:
        if not _signatures_match(golden_flat, candidate_flat):
            mismatches.append("connection graph signatures differ")

    return ComparisonResult(not mismatches, mismatches)


def _net_signatures(module: Module) -> Dict[str, Tuple]:
    """A refinement signature per net: how it is used by gates of each type."""
    signature: Dict[str, List[Tuple[str, str]]] = {name: [] for name in module.nets}
    for instance in module.instances:
        kind = instance.kind_name
        for port, net in instance.connections.items():
            role = "out" if port == "out" else "in"
            signature.setdefault(net, []).append((kind, role))
    result: Dict[str, Tuple] = {}
    for name, uses in signature.items():
        net = module.nets.get(name)
        # Ports are anchored by NAME: an LVS-style comparison must map input
        # "a" to input "a", so a design with two inputs swapped is different
        # even though the unlabelled graphs are isomorphic.
        if net is not None and (net.is_input or net.is_output):
            io_flag = ("port", name)
        else:
            io_flag = ("internal", "")
        result[name] = (io_flag, tuple(sorted(uses)))
    return result


def _signatures_match(golden: Module, candidate: Module, rounds: int = 4) -> bool:
    """Iteratively refined multiset comparison of net signatures.

    This is a necessary (not strictly sufficient) isomorphism test, which in
    practice distinguishes all the netlists this toolchain produces; the
    refinement incorporates neighbour signatures so swapped connections are
    detected.
    """
    golden_signature = _net_signatures(golden)
    candidate_signature = _net_signatures(candidate)

    for _ in range(rounds):
        if sorted(golden_signature.values()) != sorted(candidate_signature.values()):
            return False
        golden_signature = _refine(golden, golden_signature)
        candidate_signature = _refine(candidate, candidate_signature)
    return sorted(golden_signature.values()) == sorted(candidate_signature.values())


def _refine(module: Module, signature: Dict[str, Tuple]) -> Dict[str, Tuple]:
    refined: Dict[str, Tuple] = {}
    neighbour: Dict[str, List[Tuple]] = {name: [] for name in signature}
    for instance in module.instances:
        nets = list(instance.connections.values())
        for net in nets:
            for other in nets:
                if other != net:
                    neighbour.setdefault(net, []).append(signature.get(other, ()))
    for name, base in signature.items():
        refined[name] = (base, tuple(sorted(map(repr, neighbour.get(name, [])))))
    return refined


def compare_switch_networks(golden: SwitchNetwork, candidate: SwitchNetwork) -> ComparisonResult:
    """Compare two transistor networks (extracted vs reference)."""
    mismatches: List[str] = []
    golden_census = _device_census(golden)
    candidate_census = _device_census(candidate)
    if golden_census != candidate_census:
        mismatches.append(f"device census differs: {golden_census} vs {candidate_census}")

    golden_degrees = _node_degree_multiset(golden)
    candidate_degrees = _node_degree_multiset(candidate)
    if golden_degrees != candidate_degrees:
        mismatches.append("node connectivity signatures differ")
    return ComparisonResult(not mismatches, mismatches)


def _device_census(network: SwitchNetwork) -> Dict[str, int]:
    census: Dict[str, int] = {}
    for device in network.transistors:
        census[device.kind.value] = census.get(device.kind.value, 0) + 1
    return census


def _node_degree_multiset(network: SwitchNetwork) -> List[Tuple[int, int, int]]:
    gate_degree: Dict[str, int] = {}
    channel_degree: Dict[str, int] = {}
    supply_degree: Dict[str, int] = {}
    for device in network.transistors:
        gate_degree[device.gate] = gate_degree.get(device.gate, 0) + 1
        for node in (device.source, device.drain):
            channel_degree[node] = channel_degree.get(node, 0) + 1
            if node in ("vdd", "gnd"):
                supply_degree[node] = supply_degree.get(node, 0) + 1
    nodes = set(gate_degree) | set(channel_degree)
    return sorted(
        (gate_degree.get(node, 0), channel_degree.get(node, 0),
         1 if node in ("vdd", "gnd") else 0)
        for node in nodes
    )
