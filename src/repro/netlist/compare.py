"""Netlist comparison (the LVS step).

Three comparisons are provided:

* :func:`compare_netlists` — structural comparison of two gate-level
  modules: same port signature, same gate census and a greedy
  signature-refinement isomorphism check of the connection graph;
* :func:`compare_netlists` with ``functional=True`` — bit-parallel
  *functional* equivalence: instead of demanding the same gates, it proves
  the two modules compute the same outputs, exhaustively over all input
  patterns when the input count permits (one levelized pass evaluates
  every pattern at once via packed bitplanes) and by seeded random
  stimulus above that; sequential modules are co-simulated from reset over
  many independent stimulus streams in parallel;
* :func:`compare_switch_networks` — transistor-level comparison used to
  check an extracted network against a reference (device census per kind
  and per-node degree signatures).

All return a :class:`ComparisonResult` carrying human-readable mismatch
diagnostics rather than just a boolean, because the interesting output of an
LVS run is *why* the descriptions disagree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.netlist.module import Module
from repro.netlist.switch_sim import SwitchNetwork


@dataclass
class ComparisonResult:
    """Outcome of a netlist comparison."""

    matches: bool
    mismatches: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.matches

    def explain(self) -> str:
        if self.matches:
            return "netlists match"
        return "netlists differ:\n  " + "\n  ".join(self.mismatches)


def compare_netlists(golden: Module, candidate: Module,
                     check_names: bool = False,
                     functional: bool = False,
                     exhaustive_limit: int = 12,
                     stimulus_vectors: int = 64,
                     stimulus_cycles: int = 64,
                     seed: int = 0) -> ComparisonResult:
    """Compare two gate-level modules.

    Structurally by default; with ``functional=True`` the gate census and
    connection-graph checks are replaced by a functional equivalence sweep
    (an RTL-compiled netlist and a hand reference are then allowed to use
    entirely different gates as long as they compute the same function).
    """
    golden_flat = golden.flattened()
    candidate_flat = candidate.flattened()
    mismatches: List[str] = []

    golden_inputs = sorted(golden_flat.input_names())
    candidate_inputs = sorted(candidate_flat.input_names())
    if golden_inputs != candidate_inputs:
        mismatches.append(f"input ports differ: {golden_inputs} vs {candidate_inputs}")
    golden_outputs = sorted(golden_flat.output_names())
    candidate_outputs = sorted(candidate_flat.output_names())
    if golden_outputs != candidate_outputs:
        mismatches.append(f"output ports differ: {golden_outputs} vs {candidate_outputs}")

    if functional:
        if not mismatches:
            mismatches.extend(_functional_mismatches(
                golden_flat, candidate_flat, golden_inputs, golden_outputs,
                exhaustive_limit, stimulus_vectors, stimulus_cycles, seed,
            ))
        return ComparisonResult(not mismatches, mismatches)

    golden_census = golden_flat.count_by_type()
    candidate_census = candidate_flat.count_by_type()
    if golden_census != candidate_census:
        mismatches.append(f"gate census differs: {golden_census} vs {candidate_census}")

    if not mismatches:
        if not _signatures_match(golden_flat, candidate_flat):
            mismatches.append("connection graph signatures differ")

    return ComparisonResult(not mismatches, mismatches)


# -- functional equivalence ------------------------------------------------------------


def _functional_mismatches(golden_flat: Module, candidate_flat: Module,
                           inputs: List[str], outputs: List[str],
                           exhaustive_limit: int, stimulus_vectors: int,
                           stimulus_cycles: int, seed: int) -> List[str]:
    from repro.sim import BitplaneEvaluator, compile_netlist, \
        exhaustive_input_planes, run_streams
    from repro.sim.kernel import OP_LATCH

    golden_compiled = compile_netlist(golden_flat)
    candidate_compiled = compile_netlist(candidate_flat)
    # Latches hold state just like flip-flops, and so do cyclic netlists
    # (cross-coupled gates): a single combinational pass cannot distinguish
    # "holds the previous value" from X, so any stateful module must take
    # the co-simulation path for the verdict to be sound.
    sequential = bool(
        golden_compiled.dffs or candidate_compiled.dffs
        or OP_LATCH in golden_compiled.gate_ops
        or OP_LATCH in candidate_compiled.gate_ops
        or golden_compiled.is_cyclic or candidate_compiled.is_cyclic
    )

    if sequential:
        rng = random.Random(seed)
        stimulus = [
            [{name: rng.getrandbits(1) for name in inputs}
             for _cycle in range(stimulus_cycles)]
            for _stream in range(stimulus_vectors)
        ]
        try:
            golden_traces = run_streams(golden_compiled, stimulus,
                                        record=outputs, reset_value=0)
            candidate_traces = run_streams(candidate_compiled, stimulus,
                                           record=outputs, reset_value=0)
        except RuntimeError as error:
            # An oscillating (typically cross-coupled) netlist has no
            # settled value to compare; refuse to call that equivalent.
            return [
                f"functional check inconclusive: {error} under random "
                f"stimulus (seed {seed}); not provably equivalent"
            ]
        for stream in range(stimulus_vectors):
            for cycle in range(stimulus_cycles):
                golden_cycle = golden_traces[stream][cycle]
                candidate_cycle = candidate_traces[stream][cycle]
                if golden_cycle == candidate_cycle:
                    continue
                name = next(n for n in outputs
                            if golden_cycle[n] != candidate_cycle[n])
                return [
                    "functional mismatch: output "
                    f"{name!r} = {candidate_cycle[name]} vs {golden_cycle[name]} "
                    f"at cycle {cycle} of random stimulus stream {stream} "
                    f"(seed {seed}, {stimulus_vectors} parallel streams from reset)"
                ]
        return []

    num_inputs = len(inputs)
    if num_inputs <= exhaustive_limit:
        width = 1 << num_inputs
        planes = exhaustive_input_planes(num_inputs)
        described = f"exhaustive over all {width} input patterns"
    else:
        width = stimulus_vectors
        mask = (1 << width) - 1
        rng = random.Random(seed)
        planes = []
        for _name in inputs:
            hi_plane = rng.getrandbits(width) & mask
            planes.append((hi_plane, mask ^ hi_plane))
        described = f"{width} random input patterns (seed {seed})"

    golden_eval = BitplaneEvaluator(golden_compiled, width)
    candidate_eval = BitplaneEvaluator(candidate_compiled, width)
    for name, (hi_plane, lo_plane) in zip(inputs, planes):
        golden_eval.set_input_planes(name, hi_plane, lo_plane)
        candidate_eval.set_input_planes(name, hi_plane, lo_plane)
    golden_eval.evaluate()
    candidate_eval.evaluate()

    for name in outputs:
        golden_hi, golden_lo = golden_eval.get_planes(name)
        candidate_hi, candidate_lo = candidate_eval.get_planes(name)
        diff = (golden_hi ^ candidate_hi) | (golden_lo ^ candidate_lo)
        if not diff:
            continue
        vector = (diff & -diff).bit_length() - 1
        assignment = {
            input_name: (planes[i][0] >> vector) & 1
            for i, input_name in enumerate(inputs)
        }
        def _decode(hi_plane: int, lo_plane: int) -> object:
            if (hi_plane >> vector) & 1:
                return 1
            if (lo_plane >> vector) & 1:
                return 0
            return "X"
        return [
            f"functional mismatch: output {name!r} = "
            f"{_decode(candidate_hi, candidate_lo)} vs "
            f"{_decode(golden_hi, golden_lo)} for inputs {assignment} "
            f"({described})"
        ]
    return []


# -- structural signatures -------------------------------------------------------------


def _net_signatures(module: Module) -> Dict[str, Tuple]:
    """A refinement signature per net: how it is used by gates of each type."""
    signature: Dict[str, List[Tuple[str, str]]] = {name: [] for name in module.nets}
    for instance in module.instances:
        kind = instance.kind_name
        for port, net in instance.connections.items():
            role = "out" if port == "out" else "in"
            signature.setdefault(net, []).append((kind, role))
    result: Dict[str, Tuple] = {}
    for name, uses in signature.items():
        net = module.nets.get(name)
        # Ports are anchored by NAME: an LVS-style comparison must map input
        # "a" to input "a", so a design with two inputs swapped is different
        # even though the unlabelled graphs are isomorphic.
        if net is not None and (net.is_input or net.is_output):
            io_flag = ("port", name)
        else:
            io_flag = ("internal", "")
        result[name] = (io_flag, tuple(sorted(uses)))
    return result


def _signatures_match(golden: Module, candidate: Module, rounds: int = 4) -> bool:
    """Iteratively refined multiset comparison of net signatures.

    This is a necessary (not strictly sufficient) isomorphism test, which in
    practice distinguishes all the netlists this toolchain produces; the
    refinement incorporates neighbour signatures so swapped connections are
    detected.

    Signatures are interned to integer ids shared between both modules, so
    each refinement round appends and sorts small ints instead of building
    (previously ``repr``-keyed) nested tuples whose size doubled per round.
    """
    interner: Dict[Tuple, int] = {}

    def intern(value: Tuple) -> int:
        sig_id = interner.get(value)
        if sig_id is None:
            sig_id = len(interner)
            interner[value] = sig_id
        return sig_id

    golden_ids = {name: intern(sig)
                  for name, sig in _net_signatures(golden).items()}
    candidate_ids = {name: intern(sig)
                     for name, sig in _net_signatures(candidate).items()}

    for _ in range(rounds):
        if sorted(golden_ids.values()) != sorted(candidate_ids.values()):
            return False
        golden_ids = _refine(golden, golden_ids, intern)
        candidate_ids = _refine(candidate, candidate_ids, intern)
    return sorted(golden_ids.values()) == sorted(candidate_ids.values())


_MISSING_SIGNATURE = ("missing",)


def _refine(module: Module, signature: Dict[str, int],
            intern: Callable[[Tuple], int]) -> Dict[str, int]:
    missing = intern(_MISSING_SIGNATURE)
    neighbour: Dict[str, List[int]] = {name: [] for name in signature}
    for instance in module.instances:
        nets = list(instance.connections.values())
        for net in nets:
            bucket = neighbour.setdefault(net, [])
            for other in nets:
                if other != net:
                    bucket.append(signature.get(other, missing))
    return {
        name: intern((base, tuple(sorted(neighbour.get(name, [])))))
        for name, base in signature.items()
    }


def compare_switch_networks(golden: SwitchNetwork, candidate: SwitchNetwork) -> ComparisonResult:
    """Compare two transistor networks (extracted vs reference)."""
    mismatches: List[str] = []
    golden_census = _device_census(golden)
    candidate_census = _device_census(candidate)
    if golden_census != candidate_census:
        mismatches.append(f"device census differs: {golden_census} vs {candidate_census}")

    golden_degrees = _node_degree_multiset(golden)
    candidate_degrees = _node_degree_multiset(candidate)
    if golden_degrees != candidate_degrees:
        mismatches.append("node connectivity signatures differ")
    return ComparisonResult(not mismatches, mismatches)


def _device_census(network: SwitchNetwork) -> Dict[str, int]:
    census: Dict[str, int] = {}
    for device in network.transistors:
        census[device.kind.value] = census.get(device.kind.value, 0) + 1
    return census


def _node_degree_multiset(network: SwitchNetwork) -> List[Tuple[int, int, int]]:
    gate_degree: Dict[str, int] = {}
    channel_degree: Dict[str, int] = {}
    supply_degree: Dict[str, int] = {}
    for device in network.transistors:
        gate_degree[device.gate] = gate_degree.get(device.gate, 0) + 1
        for node in (device.source, device.drain):
            channel_degree[node] = channel_degree.get(node, 0) + 1
            if node in ("vdd", "gnd"):
                supply_degree[node] = supply_degree.get(node, 0) + 1
    nodes = set(gate_degree) | set(channel_degree)
    return sorted(
        (gate_degree.get(node, 0), channel_degree.get(node, 0),
         1 if node in ("vdd", "gnd") else 0)
        for node in nodes
    )
