"""Switch-level simulation of NMOS transistor networks.

The circuit extractor (:mod:`repro.extract`) produces transistor-level
netlists from layout; this simulator evaluates them so a compiled chip's
*physical* description can be checked against its *behavioural* one — the
closing of the loop the paper asks for ("verification by simulation").

The model is the classic ratioed-NMOS switch model:

* a node driven to VDD through a depletion load is a *weak* 1;
* a node connected to GND through a path of conducting enhancement
  transistors is a *strong* 0, which overrides the weak 1 (ratioed logic);
* pass-transistor paths propagate values without restoring them;
* nodes with no path to a supply keep their previous value (dynamic charge
  storage), which is what makes the two-phase register work.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

VDD = "vdd"
GND = "gnd"


class TransistorKind(Enum):
    ENHANCEMENT = "enhancement"
    DEPLETION = "depletion"


@dataclass(frozen=True)
class Transistor:
    """One MOS device: gate, source, drain node names plus its kind and size."""

    name: str
    gate: str
    source: str
    drain: str
    kind: TransistorKind = TransistorKind.ENHANCEMENT
    width: int = 2
    length: int = 2

    @property
    def strength(self) -> float:
        """Drive strength proxy: W/L."""
        return self.width / max(1, self.length)


class SwitchNetwork:
    """A flat transistor network with named nodes."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.transistors: List[Transistor] = []
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._counter = 0

    def add_transistor(self, gate: str, source: str, drain: str,
                       kind: TransistorKind = TransistorKind.ENHANCEMENT,
                       width: int = 2, length: int = 2,
                       name: Optional[str] = None) -> Transistor:
        device = Transistor(
            name or f"m{self._counter}", gate, source, drain, kind, width, length
        )
        self._counter += 1
        self.transistors.append(device)
        return device

    def add_input(self, name: str) -> None:
        if name not in self.inputs:
            self.inputs.append(name)

    def add_output(self, name: str) -> None:
        if name not in self.outputs:
            self.outputs.append(name)

    def nodes(self) -> Set[str]:
        result: Set[str] = {VDD, GND}
        for device in self.transistors:
            result.update((device.gate, device.source, device.drain))
        result.update(self.inputs)
        result.update(self.outputs)
        return result

    def device_count(self) -> int:
        return len(self.transistors)

    def pullup_count(self) -> int:
        return sum(1 for t in self.transistors if t.kind is TransistorKind.DEPLETION)


class SwitchLevelSimulator:
    """Evaluate a :class:`SwitchNetwork` with the ratioed-NMOS switch model."""

    def __init__(self, network: SwitchNetwork, settle_limit: int = 200):
        self.network = network
        self.settle_limit = settle_limit
        self.values: Dict[str, Optional[int]] = {node: None for node in network.nodes()}
        self.values[VDD] = 1
        self.values[GND] = 0

    def set_inputs(self, assignment: Dict[str, int]) -> None:
        for name, value in assignment.items():
            self.values[name] = None if value is None else int(bool(value))

    def evaluate(self, assignment: Optional[Dict[str, int]] = None) -> Dict[str, Optional[int]]:
        """Settle the network and return the values of the declared outputs."""
        if assignment:
            self.set_inputs(assignment)
        self._settle()
        return {name: self.values.get(name) for name in self.network.outputs}

    def node_value(self, node: str) -> Optional[int]:
        return self.values.get(node)

    # -- internal ------------------------------------------------------------------------

    def _conducting(self, device: Transistor) -> bool:
        if device.kind is TransistorKind.DEPLETION:
            return True   # depletion devices conduct regardless of gate voltage
        gate_value = self.values.get(device.gate)
        return gate_value == 1

    def _settle(self) -> None:
        # Only inputs that have actually been given a value act as drivers; an
        # undriven "inout" terminal (e.g. the far side of a pass transistor)
        # must be free to take whatever value the network gives it.
        clamped = {name for name in self.network.inputs
                   if self.values.get(name) is not None} | {VDD, GND}
        for _ in range(self.settle_limit):
            changed = False
            groups = self._conducting_groups(clamped)
            for group in groups:
                new_value = self._resolve_group(group, clamped)
                for node in group:
                    if node in clamped:
                        continue
                    if self.values.get(node) != new_value and new_value is not None:
                        self.values[node] = new_value
                        changed = True
            if not changed:
                return
        raise RuntimeError("switch-level simulation did not settle")

    def _conducting_groups(self, clamped: Set[str]) -> List[Set[str]]:
        """Connected components of nodes joined by conducting channels.

        Supply nodes and clamped inputs terminate the merge: they belong to a
        group but do not merge two groups into one through themselves.
        """
        parent: Dict[str, str] = {node: node for node in self.network.nodes()}

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        def union(a: str, b: str) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_a] = root_b

        for device in self.network.transistors:
            if not self._conducting(device):
                continue
            source, drain = device.source, device.drain
            # Merging across a clamped node would short distinct signal nets
            # through an input; only merge if at most one side is clamped.
            union(source, drain)

        groups: Dict[str, Set[str]] = {}
        for node in self.network.nodes():
            groups.setdefault(find(node), set()).add(node)
        return list(groups.values())

    def _resolve_group(self, group: Set[str], clamped: Set[str]) -> Optional[int]:
        """Resolve the value of a connected group of nodes.

        Strength order: GND (strong 0) > VDD via depletion (weak 1) >
        clamped input value > stored charge.
        """
        if GND in group and VDD in group:
            # Ratioed fight: pulldown path wins (that is what ratioing means).
            return 0
        if GND in group:
            return 0
        if VDD in group:
            return 1
        clamped_values = {self.values[node] for node in group if node in clamped
                          and self.values.get(node) is not None}
        if len(clamped_values) == 1:
            return clamped_values.pop()
        if len(clamped_values) > 1:
            return None   # conflicting drivers through pass transistors
        stored = [self.values[node] for node in group if self.values.get(node) is not None]
        if stored and all(value == stored[0] for value in stored):
            return stored[0]
        return None
