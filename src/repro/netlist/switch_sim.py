"""Switch-level simulation of NMOS transistor networks.

The circuit extractor (:mod:`repro.extract`) produces transistor-level
netlists from layout; this simulator evaluates them so a compiled chip's
*physical* description can be checked against its *behavioural* one — the
closing of the loop the paper asks for ("verification by simulation").

The model is the classic ratioed-NMOS switch model:

* a node driven to VDD through a depletion load is a *weak* 1;
* a node connected to GND through a path of conducting enhancement
  transistors is a *strong* 0, which overrides the weak 1 (ratioed logic);
* pass-transistor paths propagate values without restoring them;
* nodes with no path to a supply keep their previous value (dynamic charge
  storage), which is what makes the two-phase register work.

Drive strength is resolved **by path kind, never by device geometry**: the
ratioed model orders GND-through-enhancement above VDD-through-depletion
above a clamped input above stored charge, and two *stored* charges that
disagree through a pass transistor resolve to unknown rather than letting
the larger capacitance win.  Transistor ``width``/``length`` therefore
exist only as extraction geometry for reporting; an earlier ``strength``
(W/L) property was never consulted by conflict resolution and has been
removed so the model can't silently diverge from its documentation.

Settling is incremental (``use_incremental=True``, the default): the
gate→device fanout and source/drain channel adjacency are precomputed
once, and each settle iteration re-merges only the connected components
whose controlling gate nodes actually changed — devices that switched off
dissolve their component for a local rebuild, devices that switched on
merge two components wholesale.  The original rebuild-everything loop is
kept verbatim behind ``use_incremental=False`` as the golden reference,
and differential tests pin the two paths value-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set

from repro.diagnostics import (
    BudgetExceeded,
    Diagnostic,
    Severity,
    run_with_fallback,
)

VDD = "vdd"
GND = "gnd"


def _settle_budget_error() -> BudgetExceeded:
    return BudgetExceeded(
        "switch-level simulation did not settle",
        Diagnostic(Severity.ERROR, "GRD003",
                   "switch-level simulation did not settle",
                   hint="the network oscillates; raise settle_limit only "
                        "if the propagation depth is real",
                   source="sim"))


class TransistorKind(Enum):
    ENHANCEMENT = "enhancement"
    DEPLETION = "depletion"


@dataclass(frozen=True)
class Transistor:
    """One MOS device: gate, source, drain node names plus its kind and size.

    ``width`` and ``length`` are extraction geometry (reported, compared in
    LVS); they deliberately play no role in conflict resolution — see the
    module docstring.
    """

    name: str
    gate: str
    source: str
    drain: str
    kind: TransistorKind = TransistorKind.ENHANCEMENT
    width: int = 2
    length: int = 2


class SwitchNetwork:
    """A flat transistor network with named nodes."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.transistors: List[Transistor] = []
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._counter = 0

    def add_transistor(self, gate: str, source: str, drain: str,
                       kind: TransistorKind = TransistorKind.ENHANCEMENT,
                       width: int = 2, length: int = 2,
                       name: Optional[str] = None) -> Transistor:
        device = Transistor(
            name or f"m{self._counter}", gate, source, drain, kind, width, length
        )
        self._counter += 1
        self.transistors.append(device)
        return device

    def add_input(self, name: str) -> None:
        if name not in self.inputs:
            self.inputs.append(name)

    def add_output(self, name: str) -> None:
        if name not in self.outputs:
            self.outputs.append(name)

    def nodes(self) -> Set[str]:
        result: Set[str] = {VDD, GND}
        for device in self.transistors:
            result.update((device.gate, device.source, device.drain))
        result.update(self.inputs)
        result.update(self.outputs)
        return result

    def device_count(self) -> int:
        return len(self.transistors)

    def pullup_count(self) -> int:
        return sum(1 for t in self.transistors if t.kind is TransistorKind.DEPLETION)


class SwitchLevelSimulator:
    """Evaluate a :class:`SwitchNetwork` with the ratioed-NMOS switch model."""

    def __init__(self, network: SwitchNetwork, settle_limit: int = 200,
                 use_incremental: bool = True):
        self.network = network
        self.settle_limit = settle_limit
        self.use_incremental = use_incremental
        self.values: Dict[str, Optional[int]] = {node: None for node in network.nodes()}
        self.values[VDD] = 1
        self.values[GND] = 0
        # Incremental settling state (built lazily on first settle).
        self._num_devices = -1
        self._gate_fanout: Dict[str, List[int]] = {}
        self._chan_adj: Dict[str, List[int]] = {}
        self._on: List[bool] = []
        self._comp: Dict[str, int] = {}
        self._members: Dict[int, Set[str]] = {}
        self._next_comp_id = 0
        self._topo_valid = False

    def set_inputs(self, assignment: Dict[str, int]) -> None:
        for name, value in assignment.items():
            self.values[name] = None if value is None else int(bool(value))

    def evaluate(self, assignment: Optional[Dict[str, int]] = None) -> Dict[str, Optional[int]]:
        """Settle the network and return the values of the declared outputs."""
        if assignment:
            self.set_inputs(assignment)
        self._settle()
        return {name: self.values.get(name) for name in self.network.outputs}

    def node_value(self, node: str) -> Optional[int]:
        return self.values.get(node)

    # -- internal ------------------------------------------------------------------------

    def _conducting(self, device: Transistor) -> bool:
        if device.kind is TransistorKind.DEPLETION:
            return True   # depletion devices conduct regardless of gate voltage
        gate_value = self.values.get(device.gate)
        return gate_value == 1

    def _settle(self) -> None:
        # Only inputs that have actually been given a value act as drivers; an
        # undriven "inout" terminal (e.g. the far side of a pass transistor)
        # must be free to take whatever value the network gives it.
        clamped = {name for name in self.network.inputs
                   if self.values.get(name) is not None} | {VDD, GND}
        if self.use_incremental:
            # An incremental-bookkeeping bug must not take simulation down:
            # degrade to the retained reference loop (with its state reset,
            # so it rebuilds from the network alone).  BudgetExceeded
            # propagates — a genuine oscillation hangs both paths.
            def fallback() -> None:
                self._num_devices = -1
                self._topo_valid = False
                self._settle_reference(clamped)

            run_with_fallback("switch-level settle",
                              lambda: self._settle_incremental(clamped),
                              fallback, code="FBK003")
        else:
            self._settle_reference(clamped)

    # -- reference path (the seed implementation, kept as the golden model) ---------------

    def _settle_reference(self, clamped: Set[str]) -> None:
        for _ in range(self.settle_limit):
            changed = False
            groups = self._conducting_groups(clamped)
            for group in groups:
                new_value = self._resolve_group(group, clamped)
                for node in group:
                    if node in clamped:
                        continue
                    if self.values.get(node) != new_value and new_value is not None:
                        self.values[node] = new_value
                        changed = True
            if not changed:
                return
        raise _settle_budget_error()

    def _conducting_groups(self, clamped: Set[str]) -> List[Set[str]]:
        """Connected components of nodes joined by conducting channels.

        Supply nodes and clamped inputs terminate the merge: they belong to a
        group but do not merge two groups into one through themselves.
        """
        parent: Dict[str, str] = {node: node for node in self.network.nodes()}

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        def union(a: str, b: str) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_a] = root_b

        for device in self.network.transistors:
            if not self._conducting(device):
                continue
            source, drain = device.source, device.drain
            # Merging across a clamped node would short distinct signal nets
            # through an input; only merge if at most one side is clamped.
            union(source, drain)

        groups: Dict[str, Set[str]] = {}
        for node in self.network.nodes():
            groups.setdefault(find(node), set()).add(node)
        return list(groups.values())

    # -- incremental path -------------------------------------------------------------------

    def _build_static(self) -> None:
        """Precompute gate→device fanout and channel adjacency once."""
        devices = self.network.transistors
        self._num_devices = len(devices)
        self._gate_fanout = {}
        self._chan_adj = {}
        for index, device in enumerate(devices):
            if device.kind is TransistorKind.ENHANCEMENT:
                self._gate_fanout.setdefault(device.gate, []).append(index)
            self._chan_adj.setdefault(device.source, []).append(index)
            self._chan_adj.setdefault(device.drain, []).append(index)
        self._topo_valid = False

    def _rebuild_components(self) -> None:
        """Full component build from the current conductance states."""
        devices = self.network.transistors
        self._on = [self._conducting(device) for device in devices]
        self._comp = {}
        self._members = {}
        self._next_comp_id = 0
        for node in self.network.nodes():
            if node in self._comp:
                continue
            component = self._flood(node, restrict=None)
            comp_id = self._next_comp_id
            self._next_comp_id += 1
            self._members[comp_id] = component
            for member in component:
                self._comp[member] = comp_id
        self._topo_valid = True

    def _flood(self, start: str, restrict: Optional[Set[str]]) -> Set[str]:
        """BFS over conducting channels from ``start``.

        ``restrict`` (when given) bounds the walk to a node set known to
        contain the whole component — used when rebuilding dissolved
        components, whose nodes cannot conduct to the outside (an on-device
        to an outside node would have put that node in the same component
        already).
        """
        devices = self.network.transistors
        on = self._on
        adjacency = self._chan_adj
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for device_index in adjacency.get(node, ()):
                if not on[device_index]:
                    continue
                device = devices[device_index]
                other = device.drain if device.source == node else device.source
                if other in component:
                    continue
                if restrict is not None and other not in restrict:
                    continue
                component.add(other)
                frontier.append(other)
        return component

    def _settle_incremental(self, clamped: Set[str]) -> None:
        if self._num_devices != len(self.network.transistors):
            self._build_static()
        devices = self.network.transistors

        if not self._topo_valid:
            self._rebuild_components()
            flip_candidates: Sequence[int] = ()
        else:
            # Values may have moved via set_inputs since the last settle:
            # one full conductance scan, then change-driven within the loop.
            flip_candidates = range(len(devices))

        resolve_all = True
        affected: Set[int] = set()
        for _ in range(self.settle_limit):
            # -- re-merge only where controlling gates changed ------------------
            dirty: Set[int] = set()
            merges: List[int] = []
            for device_index in flip_candidates:
                now_on = self._conducting(devices[device_index])
                if now_on == self._on[device_index]:
                    continue
                self._on[device_index] = now_on
                device = devices[device_index]
                if now_on:
                    merges.append(device_index)
                else:
                    dirty.add(self._comp[device.source])
                    dirty.add(self._comp[device.drain])
            if dirty:
                region: Set[str] = set()
                for comp_id in dirty:
                    region.update(self._members.pop(comp_id))
                while region:
                    seed = next(iter(region))
                    component = self._flood(seed, restrict=region)
                    region.difference_update(component)
                    comp_id = self._next_comp_id
                    self._next_comp_id += 1
                    self._members[comp_id] = component
                    affected.add(comp_id)
                    for member in component:
                        self._comp[member] = comp_id
            for device_index in merges:
                device = devices[device_index]
                comp_a = self._comp[device.source]
                comp_b = self._comp[device.drain]
                if comp_a == comp_b:
                    affected.add(comp_a)
                    continue
                if len(self._members[comp_a]) < len(self._members[comp_b]):
                    comp_a, comp_b = comp_b, comp_a
                absorbed = self._members.pop(comp_b)
                self._members[comp_a].update(absorbed)
                for member in absorbed:
                    self._comp[member] = comp_a
                affected.add(comp_a)
            affected = {comp_id for comp_id in affected if comp_id in self._members}

            # -- resolve only the groups that could have changed ----------------
            if resolve_all:
                to_resolve = list(self._members)
                resolve_all = False
            else:
                to_resolve = list(affected)
            changed_nodes: List[str] = []
            for comp_id in to_resolve:
                group = self._members[comp_id]
                new_value = self._resolve_group(group, clamped)
                for node in group:
                    if node in clamped:
                        continue
                    if self.values.get(node) != new_value and new_value is not None:
                        self.values[node] = new_value
                        changed_nodes.append(node)
            if not changed_nodes:
                return
            # Next iteration: only devices gated by changed nodes can flip,
            # and only groups holding changed nodes can resolve differently.
            next_flips: Set[int] = set()
            affected = set()
            for node in changed_nodes:
                next_flips.update(self._gate_fanout.get(node, ()))
                affected.add(self._comp[node])
            flip_candidates = sorted(next_flips)
        raise _settle_budget_error()

    def _resolve_group(self, group: Set[str], clamped: Set[str]) -> Optional[int]:
        """Resolve the value of a connected group of nodes.

        Strength order: GND (strong 0) > VDD via depletion (weak 1) >
        clamped input value > stored charge.
        """
        if GND in group and VDD in group:
            # Ratioed fight: pulldown path wins (that is what ratioing means).
            return 0
        if GND in group:
            return 0
        if VDD in group:
            return 1
        clamped_values = {self.values[node] for node in group if node in clamped
                          and self.values.get(node) is not None}
        if len(clamped_values) == 1:
            return clamped_values.pop()
        if len(clamped_values) > 1:
            return None   # conflicting drivers through pass transistors
        stored = [self.values[node] for node in group if self.values.get(node) is not None]
        if stored and all(value == stored[0] for value in stored):
            return stored[0]
        return None
