"""Event-driven gate-level simulator.

Supports three-valued logic (0, 1, X), combinational convergence within a
cycle, clocked D flip-flops (one implicit clock) and transparent latches.
Also reports a unit-delay critical-path estimate per evaluation, which the
E2 "cost in space and speed" experiment uses as its speed metric.

Two execution paths share this façade:

* the **compiled kernel** (default, ``use_compiled=True``): the netlist is
  lowered once by :mod:`repro.sim.kernel` to integer-indexed arrays with
  precomputed fanout, so each settle sweep after the first touches only the
  gates downstream of nets that actually changed;
* the **reference interpreter** (``use_compiled=False``): the original
  rescan-everything implementation, kept as the golden semantic reference —
  differential tests pin the compiled path trace-identical to it (values,
  ``last_depth`` and ``critical_path_estimate`` included), mirroring the
  ``use_index=False`` convention of the geometry engine.

In compiled mode ``values`` and ``state`` remain live name-keyed views that
the kernel keeps in sync; mutate state through ``set_inputs``/``reset``
(direct writes into ``values`` are only honoured by the interpreter path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from typing import TYPE_CHECKING

from repro.diagnostics import (
    BudgetExceeded,
    Diagnostic,
    Severity,
    run_with_fallback,
)
from repro.netlist.module import GateType, Instance, Module
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs import vcd as obs_vcd

if TYPE_CHECKING:   # the kernel package imports this package's modules
    from repro.sim.kernel import ScalarEngine

X = None  # unknown value marker


@dataclass
class SimulationTrace:
    """Per-cycle record of net values."""

    cycles: List[Dict[str, Optional[int]]] = field(default_factory=list)

    def value(self, cycle: int, net: str) -> Optional[int]:
        return self.cycles[cycle].get(net)

    def series(self, net: str) -> List[Optional[int]]:
        return [cycle.get(net) for cycle in self.cycles]

    def __len__(self) -> int:
        return len(self.cycles)


class GateLevelSimulator:
    """Simulate a (flattened) structural module."""

    def __init__(self, module: Module, settle_limit: int = 10000,
                 use_compiled: bool = True):
        self.module = module.flattened()
        problems = [p for p in self.module.validate() if "never driven" not in p]
        if problems:
            raise ValueError("netlist is not simulatable: " + "; ".join(problems))
        self.settle_limit = settle_limit
        self.values: Dict[str, Optional[int]] = {name: X for name in self.module.nets}
        self.state: Dict[str, Optional[int]] = {}
        self.last_depth = 0
        self._dffs: List[Instance] = [
            instance for instance in self.module.instances
            if instance.kind is GateType.DFF
        ]
        self.use_compiled = use_compiled
        self._engine: Optional["ScalarEngine"] = None
        if use_compiled:
            # Imported here, not at module top: repro.sim.kernel imports
            # repro.netlist.module, so a top-level import would make
            # ``import repro.sim`` fail depending on which package is
            # imported first.
            from repro.sim.kernel import ScalarEngine, compile_netlist

            def build() -> "ScalarEngine":
                self._compiled = compile_netlist(self.module)
                return ScalarEngine(
                    self._compiled, self.values, self.state, settle_limit
                )

            # A lowering bug must not take the simulator down: degrade to
            # the retained interpreter with a warning (fatal under
            # REPRO_STRICT=1 so CI still surfaces it).
            self._engine = run_with_fallback(
                "gate-level simulator", build, lambda: None, code="FBK002")
            if self._engine is None:
                self.use_compiled = False

    # -- evaluation -----------------------------------------------------------------

    def _gate_output(self, instance: Instance) -> Optional[int]:
        gate: GateType = instance.kind
        inputs = [self.values.get(net) for net in instance.data_input_nets()]
        if gate is GateType.CONST0:
            return 0
        if gate is GateType.CONST1:
            return 1
        if gate is GateType.MUX2:
            sel = self.values.get(instance.connections.get("sel", ""))
            a = self.values.get(instance.connections.get("a", ""))
            b = self.values.get(instance.connections.get("b", ""))
            if sel is X:
                return a if a == b else X
            return b if sel else a
        if gate is GateType.LATCH:
            enable = self.values.get(instance.connections.get("enable", ""))
            data = self.values.get(instance.connections.get("in0", ""))
            if enable == 1:
                self.state[instance.name] = data   # transparent: track the data
                return data
            return self.state.get(instance.name, X)
        if any(value is X for value in inputs):
            return self._x_result(gate, inputs)
        if gate in (GateType.AND, GateType.NAND):
            result = int(all(inputs))
            return result if gate is GateType.AND else 1 - result
        if gate in (GateType.OR, GateType.NOR):
            result = int(any(inputs))
            return result if gate is GateType.OR else 1 - result
        if gate in (GateType.XOR, GateType.XNOR):
            result = sum(inputs) % 2
            return result if gate is GateType.XOR else 1 - result
        if gate is GateType.NOT:
            return 1 - inputs[0]
        if gate is GateType.BUF:
            return inputs[0]
        raise AssertionError(f"unhandled gate {gate}")

    @staticmethod
    def _x_result(gate: GateType, inputs: List[Optional[int]]) -> Optional[int]:
        """Partial evaluation with unknowns (controlling values still decide)."""
        known = [value for value in inputs if value is not X]
        if gate in (GateType.AND, GateType.NAND) and 0 in known:
            return 0 if gate is GateType.AND else 1
        if gate in (GateType.OR, GateType.NOR) and 1 in known:
            return 1 if gate is GateType.OR else 0
        return X

    def settle(self) -> int:
        """Propagate combinational logic to a fixed point; returns the depth."""
        if self._engine is not None:
            self.last_depth = self._engine.settle()
            return self.last_depth
        depth = 0
        iterations = 0
        changed_nets: Set[str] = set(self.module.nets)
        while changed_nets:
            iterations += 1
            if iterations > self.settle_limit:
                raise BudgetExceeded(
                    "combinational loop did not settle (oscillation?)",
                    Diagnostic(Severity.ERROR, "GRD002",
                               "combinational loop did not settle "
                               "(oscillation?)", source="sim"))
            next_changed: Set[str] = set()
            for instance in self.module.instances:
                if instance.kind.is_sequential and instance.kind is not GateType.LATCH:
                    continue
                input_nets = instance.input_nets()
                if input_nets and not any(net in changed_nets for net in input_nets):
                    continue
                output_net = instance.connections.get("out")
                if output_net is None:
                    continue
                new_value = self._gate_output(instance)
                if new_value != self.values.get(output_net):
                    self.values[output_net] = new_value
                    next_changed.add(output_net)
            if next_changed:
                depth += 1
            changed_nets = next_changed
        self.last_depth = depth
        obs_metrics.counter("sim.settle.calls").inc()
        obs_metrics.counter("sim.settle.iterations").inc(iterations)
        return depth

    def set_inputs(self, assignment: Dict[str, int]) -> None:
        engine = self._engine
        if engine is not None:
            index = self._compiled.net_index
            for name, value in assignment.items():
                if name not in self.module.nets:
                    raise KeyError(f"unknown input net {name!r}")
                engine.set_value(index[name],
                                 value if value is X else int(bool(value)))
            return
        for name, value in assignment.items():
            if name not in self.module.nets:
                raise KeyError(f"unknown input net {name!r}")
            self.values[name] = value if value is X else int(bool(value))

    def evaluate(self, assignment: Dict[str, int]) -> Dict[str, Optional[int]]:
        """Combinational evaluation: set inputs, settle, read outputs."""
        self.set_inputs(assignment)
        self.settle()
        return {name: self.values.get(name) for name in self.module.output_names()}

    def clock(self) -> None:
        """One clock edge: all DFFs capture their D inputs simultaneously."""
        if self._engine is not None:
            self._engine.clock()
        else:
            # Single pass over the flip-flops: capture every D first, then
            # apply, so a DFF feeding another DFF shifts its *old* value.
            captured = [
                (instance, self.values.get(instance.connections.get("in0")))
                for instance in self._dffs
            ]
            for instance, value in captured:
                self.state[instance.name] = value
                self.values[instance.connections["out"]] = value
        self.settle()

    def run(self, input_sequence: Sequence[Dict[str, int]],
            record: Optional[Iterable[str]] = None,
            vcd: Optional[object] = None) -> SimulationTrace:
        """Clocked simulation: apply one input vector per cycle.

        ``vcd`` optionally streams the watched nets to a waveform dump: pass
        a path (the writer is opened and closed here) or an open
        :class:`repro.obs.vcd.VcdWriter` (caller keeps ownership).
        """
        watch = list(record) if record is not None else (
            self.module.input_names() + self.module.output_names()
        )
        trace = SimulationTrace()
        owns_writer = isinstance(vcd, str)
        writer = (obs_vcd.VcdWriter(vcd, module=self.module.name)
                  if owns_writer else vcd)
        try:
            with obs_trace.span("sim.run", cat="sim", module=self.module.name,
                                cycles=len(input_sequence)):
                for time, vector in enumerate(input_sequence):
                    self.set_inputs(vector)
                    self.settle()
                    sampled = {name: self.values.get(name) for name in watch}
                    trace.cycles.append(sampled)
                    if writer is not None:
                        writer.sample(time, sampled)
                    self.clock()
        finally:
            if owns_writer and writer is not None:
                writer.close()
        return trace

    def reset(self, value: int = 0) -> None:
        """Force all flip-flop states to ``value`` and re-settle."""
        if self._engine is not None:
            self._engine.reset(value)
        else:
            for instance in self._dffs:
                self.state[instance.name] = value
                self.values[instance.connections["out"]] = value
        self.settle()

    def critical_path_estimate(self) -> int:
        """Longest combinational depth (unit delay per gate) in the module."""
        if self._engine is not None:
            return self._compiled.critical_path_estimate()
        depth_of: Dict[str, int] = {name: 0 for name in self.module.input_names()}
        for instance in self._dffs:
            depth_of[instance.connections["out"]] = 0

        # Iteratively relax until stable (handles arbitrary topological order).
        changed = True
        iterations = 0
        best = 0
        while changed:
            iterations += 1
            if iterations > len(self.module.instances) + 2:
                break
            changed = False
            for instance in self.module.instances:
                if instance.kind.is_sequential:
                    continue
                output = instance.connections.get("out")
                if output is None:
                    continue
                input_depths = [
                    depth_of.get(net, 0) for net in instance.input_nets()
                ]
                candidate = (max(input_depths) if input_depths else 0) + 1
                if candidate > depth_of.get(output, 0):
                    depth_of[output] = candidate
                    best = max(best, candidate)
                    changed = True
        return best
