"""Wirelength-driven placement refinement.

Shelf packing (:func:`repro.assembly.floorplan.pack_shelves`) decides block
positions from dimensions alone; connectivity never enters.  The refiner
here keeps the packer as the legalizer — every candidate is a shelf packing,
so candidates are overlap-free by construction — and anneals over the
*order* in which blocks are handed to it, scoring each candidate by the
half-perimeter wirelength (HPWL) of the pad+block connection list.  Pads
are anchored at the core-edge positions the pad ring's deterministic
side-assignment will give them, so the placer pulls each block toward the
side its pads land on before the ring is even built.

The report carries the validation the Structured-ASIC flows run after
placement: bounding-box utilisation, an explicit overlap scan through the
spatial index, and the initial/final wirelength pair the benchmarks track.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.assembly.floorplan import Floorplan, pack_shelves
from repro.assembly.padframe import PadSpec, distribute_pads
from repro.diagnostics import Budget, BudgetExceeded
from repro.geometry.index import build_index
from repro.geometry.rect import Rect
from repro.layout.cell import Cell

#: A connection endpoint: a pad name, or a ``(block, port)`` pair.
Terminal = Union[str, Tuple[str, str]]


class _BlockStub:
    """The placement-relevant snapshot of a cell: its extent and ports.

    Quacks like a :class:`~repro.layout.cell.Cell` as far as the shelf
    packer and the wirelength evaluator are concerned, but costs nothing to
    re-measure, which matters when the annealer packs hundreds of candidate
    orders of blocks whose real ``bbox`` is a full hierarchy walk.
    """

    def __init__(self, cell: Cell):
        self.width = cell.width
        self.height = cell.height
        self.ports = cell.ports


@dataclass
class PlacementReport:
    """Outcome of placement refinement, with validation figures."""

    floorplan: Floorplan
    initial_wirelength: int
    final_wirelength: int
    moves_tried: int = 0
    moves_accepted: int = 0
    overlaps: List[Tuple[str, str]] = field(default_factory=list)
    budget_exhausted: bool = False

    @property
    def improvement(self) -> float:
        """Fraction of the initial HPWL removed by refinement."""
        if self.initial_wirelength == 0:
            return 0.0
        return 1.0 - self.final_wirelength / self.initial_wirelength

    @property
    def utilisation(self) -> float:
        return self.floorplan.utilisation

    @property
    def legal(self) -> bool:
        return not self.overlaps


def refine_placement(blocks: Sequence[Tuple[str, Cell]],
                     connections: Sequence[Tuple[Terminal, Terminal]],
                     pads: Sequence[PadSpec] = (),
                     max_width: Optional[int] = None,
                     spacing: int = 10,
                     iterations: int = 400,
                     seed: int = 0,
                     budget: Optional[Budget] = None) -> PlacementReport:
    """Anneal the block order fed to the shelf packer to minimise HPWL.

    ``connections`` lists point-to-point nets; each endpoint is either a pad
    name (anchored at the side :func:`distribute_pads` will deal it to) or a
    ``(block, port)`` pair resolved against the packed floorplan.  The
    annealer is deterministic for a given ``seed``.  A ``budget``
    (code ROU007 recommended) bounds the work; on exhaustion the best
    placement found so far is returned with ``budget_exhausted`` set rather
    than raising, so a slow anneal can never block assembly.
    """
    # ``Cell.bbox`` is recursive and uncached; the annealer packs hundreds
    # of candidate orders, so it works on dimension snapshots and only the
    # winning order is packed with the real cells.
    stubs = [(name, _BlockStub(cell)) for name, cell in blocks]
    baseline = pack_shelves(stubs, max_width=max_width, spacing=spacing)
    anchors = _pad_anchors(pads, baseline.width, baseline.height)
    initial = _wirelength(baseline, connections, anchors)
    if len(blocks) <= 1 or not connections:
        real = pack_shelves(blocks, max_width=max_width, spacing=spacing)
        return PlacementReport(real, initial, initial)

    rng = random.Random(seed)
    order = list(stubs)
    # The height-sorted packing is the seed candidate: never return worse.
    best_order: Optional[List[str]] = None
    best_cost = initial
    current_cost = initial
    # Geometric cooling from a temperature that accepts ~half the early
    # uphill moves down to effectively greedy.
    temperature = max(1.0, initial * 0.05)
    cooling = 0.995
    tried = accepted = 0
    exhausted = False
    try:
        for _ in range(iterations):
            if budget is not None:
                budget.tick("placement annealing exceeded its budget")
            i, j = rng.sample(range(len(order)), 2)
            order[i], order[j] = order[j], order[i]
            tried += 1
            plan = pack_shelves(order, max_width=max_width, spacing=spacing,
                                keep_order=True)
            cost = _wirelength(plan, connections, anchors)
            delta = cost - current_cost
            if delta <= 0 or rng.random() < _accept(delta, temperature):
                current_cost = cost
                accepted += 1
                if cost < best_cost:
                    best_cost = cost
                    best_order = [name for name, _ in order]
            else:
                order[i], order[j] = order[j], order[i]
            temperature *= cooling
    except BudgetExceeded:
        exhausted = True

    by_name = dict(blocks)
    if best_order is None:
        best_plan = pack_shelves(blocks, max_width=max_width, spacing=spacing)
    else:
        best_plan = pack_shelves([(name, by_name[name]) for name in best_order],
                                 max_width=max_width, spacing=spacing,
                                 keep_order=True)
    report = PlacementReport(best_plan, initial, best_cost,
                             moves_tried=tried, moves_accepted=accepted,
                             budget_exhausted=exhausted)
    _validate(report)
    return report


def _accept(delta: float, temperature: float) -> float:
    if temperature <= 0:
        return 0.0
    try:
        return math.exp(-delta / temperature)
    except OverflowError:
        return 0.0


def _pad_anchors(pads: Sequence[PadSpec], core_width: int,
                 core_height: int) -> Dict[str, Tuple[int, int]]:
    """Approximate core-edge coordinates for each pad.

    Pads are dealt to sides deterministically; each pad is anchored at its
    proportional position along its side of the core bounding box, which is
    where its tail will face once the ring is built.
    """
    anchors: Dict[str, Tuple[int, int]] = {}
    for side, specs in distribute_pads(pads).items():
        count = len(specs)
        for index, spec in enumerate(specs):
            fraction = (index + 1) / (count + 1)
            if side == "south":
                anchors[spec.name] = (int(core_width * fraction), 0)
            elif side == "north":
                anchors[spec.name] = (int(core_width * fraction), core_height)
            elif side == "west":
                anchors[spec.name] = (0, int(core_height * fraction))
            else:
                anchors[spec.name] = (core_width, int(core_height * fraction))
    return anchors


def _wirelength(plan: Floorplan,
                connections: Sequence[Tuple[Terminal, Terminal]],
                anchors: Dict[str, Tuple[int, int]]) -> int:
    total = 0
    for a, b in connections:
        pa = _terminal_position(plan, a, anchors)
        pb = _terminal_position(plan, b, anchors)
        if pa is None or pb is None:
            continue
        # HPWL of a two-terminal net is its Manhattan length.
        total += abs(pa[0] - pb[0]) + abs(pa[1] - pb[1])
    return total


def _terminal_position(plan: Floorplan, terminal: Terminal,
                       anchors: Dict[str, Tuple[int, int]],
                       ) -> Optional[Tuple[int, int]]:
    if isinstance(terminal, str):
        return anchors.get(terminal)
    block, port_name = terminal
    try:
        item = plan.item(block)
    except KeyError:
        return None
    port = item.cell.ports.get(port_name)
    if port is not None:
        return (item.x + port.position.x, item.y + port.position.y)
    return (item.x + item.width // 2, item.y + item.height // 2)


def _validate(report: PlacementReport) -> None:
    """Overlap scan through the spatial index (shelf packing should be legal
    by construction; this catches regressions in the packer itself)."""
    items = report.floorplan.items
    rects = [Rect(i.x, i.y, i.x + i.width, i.y + i.height) for i in items]
    index = build_index(rects)
    for i, rect in enumerate(rects):
        for j in index.query(rect, strict=True):
            if j > i:
                report.overlaps.append((items[i].name, items[j].name))
