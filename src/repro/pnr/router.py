"""Obstacle-aware grid routing (Lee/Dijkstra maze search).

The maze router works on a uniform lattice over the routing region.  A
lattice node is usable when a wire footprint centred there, grown by the
technology's spacing, overlaps no blockage — blockages being every metal
rectangle of the placed blocks and pad ring (queried through the spatial
index built once per assembly) plus the wires of previously routed nets.
Metal is the routing layer and only metal blocks it: poly and diffusion
running underneath cannot short to a route without a contact cut, which the
router never draws.

Search is Dijkstra with unit step cost and a small turn penalty (fewer
corners means fewer rectangles and less capacitance), budget-bounded so an
unroutable maze terminates with a diagnostic instead of flooding.  Where a
whole group of connections faces one pad-ring side across an empty
corridor, :class:`PnrRouter` skips the maze entirely and hands the group to
the planar river router — the cheap, provably non-crossing special case.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.assembly.river import RiverRoutingError, river_route
from repro.diagnostics import (
    Budget,
    BudgetExceeded,
    Diagnostic,
    DiagnosticError,
    Severity,
)
from repro.geometry.index import SpatialIndex, build_index
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.layout.cell import Cell
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.technology.technology import Technology


class RoutingError(DiagnosticError, ValueError):
    """No path exists between the requested terminals."""

    default_code = "ROU005"


@dataclass(frozen=True)
class RouteRequest:
    """One two-terminal connection to route."""

    name: str
    source: Point
    target: Point
    #: Pad-ring side the source sits on, when known ("south"/"north"/
    #: "east"/"west"); enables the river-corridor fast path.
    side: str = ""


@dataclass
class RoutedNet:
    """One successfully routed connection."""

    name: str
    points: List[Point]
    length: int
    method: str = "maze"    # "maze" or "river"


@dataclass
class RoutingReport:
    """Outcome of routing a batch of requests."""

    routed: List[RoutedNet] = field(default_factory=list)
    failed: List[Tuple[RouteRequest, Exception]] = field(default_factory=list)

    @property
    def completion(self) -> float:
        total = len(self.routed) + len(self.failed)
        if total == 0:
            return 1.0
        return len(self.routed) / total


class MazeRouter:
    """Grid router over a fixed obstacle set plus accumulated routes."""

    def __init__(self, bounds: Rect, obstacles: Sequence[Rect],
                 wire_width: int = 3, spacing: int = 3,
                 grid: Optional[int] = None,
                 turn_cost: int = 2,
                 max_expansions: int = 200_000):
        self.bounds = bounds
        self.wire_width = wire_width
        self.spacing = spacing
        self.pitch = grid if grid is not None else wire_width + spacing
        self.turn_cost = turn_cost
        self.max_expansions = max_expansions
        self._obstacles = list(obstacles)
        self._index: SpatialIndex = build_index(self._obstacles)
        #: Wires routed so far (checked in addition to the static index).
        self._routed_rects: List[Rect] = []

    # -- obstacle bookkeeping --------------------------------------------------------

    def add_obstacles(self, rects: Sequence[Rect]) -> None:
        """Block future routes with ``rects`` (e.g. a net just drawn)."""
        self._routed_rects.extend(rects)

    def remove_obstacles(self, rects: Sequence[Rect]) -> None:
        """Unblock ``rects`` previously added (e.g. a ripped-up net)."""
        for rect in rects:
            try:
                self._routed_rects.remove(rect)
            except ValueError:
                pass

    def _footprint(self, x: int, y: int) -> Rect:
        half = self.wire_width // 2
        other = self.wire_width - half
        return Rect(x - half, y - half, x + other, y + other)

    def _exempt_ids(self, *points: Point) -> Set[int]:
        """Static obstacles a route may legally touch: the terminal shapes.

        Everything overlapping a terminal's immediate footprint is the metal
        the route must land on (pad tail, block port tab); spacing to it is
        not required — connecting to it is the point.
        """
        reach = self.wire_width // 2 + self.spacing
        exempt: Set[int] = set()
        for point in points:
            probe = Rect(point.x - reach, point.y - reach,
                         point.x + reach, point.y + reach)
            exempt.update(self._index.query(probe))
        return exempt

    def _free(self, x: int, y: int, exempt: Set[int]) -> bool:
        foot = self._footprint(x, y)
        if not (self.bounds.x1 <= foot.x1 and foot.x2 <= self.bounds.x2
                and self.bounds.y1 <= foot.y1 and foot.y2 <= self.bounds.y2):
            return False
        probe = foot.expanded(self.spacing)
        for i in self._index.query(probe, strict=True):
            if i not in exempt:
                return False
        for rect in self._routed_rects:
            if probe.overlaps(rect, strict=True):
                return False
        return True

    # -- search ---------------------------------------------------------------------

    def route(self, request: RouteRequest) -> RoutedNet:
        """Find a Manhattan path from source to target.

        Raises :class:`RoutingError` (ROU005) when the terminals cannot be
        joined, or :class:`~repro.diagnostics.BudgetExceeded` (ROU006) when
        the expansion budget runs out first.
        """
        source, target = request.source, request.target
        exempt = self._exempt_ids(source, target)
        start = self._snap(source, exempt)
        goal = self._snap(target, exempt)
        if start is None or goal is None:
            raise RoutingError(
                f"net {request.name!r}: no free grid node near "
                f"{'source' if start is None else 'target'}",
                Diagnostic(Severity.ERROR, "ROU005",
                           f"terminals of net {request.name!r} are blocked",
                           hint="clear the area around the terminals or "
                                "widen the routing region"))

        budget = Budget(iterations=self.max_expansions,
                        label=f"maze expansion for {request.name}",
                        code="ROU006")
        came: Dict[Tuple[int, int, int], Tuple[int, int, int]] = {}
        # State: (x, y, heading); headings 0=none, 1=horizontal, 2=vertical.
        costs: Dict[Tuple[int, int, int], int] = {(start[0], start[1], 0): 0}
        frontier: List[Tuple[int, int, Tuple[int, int, int]]] = [
            (0, 0, (start[0], start[1], 0))]
        tie = 0
        found: Optional[Tuple[int, int, int]] = None
        while frontier:
            budget.tick(
                f"maze router exceeded {self.max_expansions} expansions "
                f"routing net {request.name!r}")
            cost, _, state = heapq.heappop(frontier)
            if cost > costs.get(state, cost):
                continue
            x, y, heading = state
            if (x, y) == goal:
                found = state
                break
            for dx, dy, new_heading in ((self.pitch, 0, 1), (-self.pitch, 0, 1),
                                        (0, self.pitch, 2), (0, -self.pitch, 2)):
                nx, ny = x + dx, y + dy
                if not self._free(nx, ny, exempt):
                    continue
                step = self.pitch
                if heading and new_heading != heading:
                    step += self.turn_cost
                next_state = (nx, ny, new_heading)
                next_cost = cost + step
                if next_cost < costs.get(next_state, next_cost + 1):
                    costs[next_state] = next_cost
                    came[next_state] = state
                    tie += 1
                    heapq.heappush(frontier, (next_cost, tie, next_state))
        if found is None:
            raise RoutingError(
                f"net {request.name!r}: no path from {source} to {target}",
                Diagnostic(Severity.ERROR, "ROU005",
                           f"maze router found no path for net {request.name!r}",
                           hint="the routing region may be fully blocked"))

        points = self._reconstruct(came, found, start)
        points = _attach(source, points, prepend=True)
        points = _attach(target, points, prepend=False)
        points = _simplify(points)
        return RoutedNet(request.name, points, _length(points))

    def _snap(self, point: Point, exempt: Set[int],
              ) -> Optional[Tuple[int, int]]:
        """Nearest free lattice node to ``point`` (searching outwards)."""
        base_x = self.bounds.x1 + round((point.x - self.bounds.x1) / self.pitch) * self.pitch
        base_y = self.bounds.y1 + round((point.y - self.bounds.y1) / self.pitch) * self.pitch
        for ring in range(4):
            candidates = []
            for dx in range(-ring, ring + 1):
                for dy in range(-ring, ring + 1):
                    if max(abs(dx), abs(dy)) != ring:
                        continue
                    candidates.append((base_x + dx * self.pitch,
                                       base_y + dy * self.pitch))
            candidates.sort(key=lambda c: abs(c[0] - point.x) + abs(c[1] - point.y))
            for x, y in candidates:
                if self._free(x, y, exempt):
                    return (x, y)
        return None

    def _reconstruct(self, came: Dict, state: Tuple[int, int, int],
                     start: Tuple[int, int]) -> List[Point]:
        points = [Point(state[0], state[1])]
        while state in came:
            state = came[state]
            point = Point(state[0], state[1])
            if point != points[-1]:
                points.append(point)
        if points[-1] != Point(start[0], start[1]):
            points.append(Point(start[0], start[1]))
        points.reverse()
        return points


class PnrRouter:
    """Route a batch of chip-level connections, corridor-first.

    Connections whose pads share one ring side, whose terminals are planar
    and whose corridor is free of blockages go to the river router as one
    group (no tracks burnt on straight runs, provably crossing-free);
    everything else is maze-routed one net at a time, each finished net
    becoming an obstacle for the next.
    """

    def __init__(self, technology: Technology, bounds: Rect,
                 obstacles: Sequence[Rect], layer: str = "metal",
                 grid: Optional[int] = None,
                 max_expansions: int = 200_000):
        rules = technology.rules
        self.layer = layer
        self.wire_width = rules.min_width(layer, default=3)
        self.spacing = rules.min_spacing(layer, default=3)
        self.maze = MazeRouter(bounds, obstacles,
                               wire_width=self.wire_width,
                               spacing=self.spacing, grid=grid,
                               max_expansions=max_expansions)
        #: Lazily built half-pitch lattice for nets the coarse grid cannot
        #: thread (four times the nodes, so only paid for on failure).
        self._fine_maze: Optional[MazeRouter] = None
        #: Per-net drawn geometry for maze-routed nets, so a net that seals
        #: the region against a later one can be ripped up and rerouted.
        self._drawn: Dict[str, Tuple["Shape", List[Rect], RouteRequest]] = {}

    @property
    def pitch(self) -> int:
        return self.maze.pitch

    def route_all(self, cell: Cell,
                  requests: Sequence[RouteRequest]) -> RoutingReport:
        """Route every request into ``cell``; failures are collected, not
        raised, so the caller decides between strict abort and fallback."""
        report = RoutingReport()
        with obs_trace.span("pnr.route_all", cat="pnr", cell=cell.name,
                            nets=len(requests)) as span:
            remaining = list(requests)
            for side in ("south", "north"):
                group = [r for r in remaining if r.side == side]
                with obs_trace.span("pnr.river", cat="pnr", side=side,
                                    nets=len(group)):
                    routed = self._try_river(cell, group, side)
                if routed:
                    obs_metrics.counter("pnr.route.river").inc(len(routed))
                    report.routed.extend(routed)
                    remaining = [r for r in remaining if r.side != side]
            for request in remaining:
                try:
                    with obs_trace.span("pnr.maze", cat="pnr",
                                        net=request.name):
                        net = self.route_one(cell, request)
                    obs_metrics.counter("pnr.route.maze").inc()
                except (RoutingError, BudgetExceeded) as error:
                    with obs_trace.span("pnr.half_pitch", cat="pnr",
                                        net=request.name):
                        net = self._retry_fine(cell, request)
                    if net is not None:
                        obs_metrics.counter("pnr.route.half_pitch").inc()
                    else:
                        with obs_trace.span("pnr.ripup", cat="pnr",
                                            net=request.name):
                            net = self._rip_and_reroute(cell, request, report)
                        if net is not None:
                            obs_metrics.counter("pnr.ripup.success").inc()
                    if net is None:
                        obs_metrics.counter("pnr.route.failed").inc()
                        report.failed.append((request, error))
                        continue
                report.routed.append(net)
            span.set(routed=len(report.routed), failed=len(report.failed))
        return report

    def route_one(self, cell: Cell, request: RouteRequest) -> RoutedNet:
        net = self.maze.route(request)
        self._draw(cell, request, net.points)
        return net

    def _retry_fine(self, cell: Cell,
                    request: RouteRequest) -> Optional[RoutedNet]:
        """Second attempt on a half-pitch lattice.

        A corridor narrower than one coarse pitch is invisible to the main
        grid; halving the pitch recovers those nets.  The fine maze shares
        the routed-wire list with the coarse one, so wires drawn by either
        block both.
        """
        fine = self.pitch // 2
        if fine < 2:
            return None
        if self._fine_maze is None:
            self._fine_maze = MazeRouter(self.maze.bounds,
                                         self.maze._obstacles,
                                         wire_width=self.wire_width,
                                         spacing=self.spacing, grid=fine,
                                         max_expansions=self.maze.max_expansions)
            self._fine_maze._routed_rects = self.maze._routed_rects
        try:
            net = self._fine_maze.route(request)
        except (RoutingError, BudgetExceeded):
            return None
        self._draw(cell, request, net.points)
        return net

    def _rip_and_reroute(self, cell: Cell, request: RouteRequest,
                         report: RoutingReport) -> Optional[RoutedNet]:
        """Last resort: rip up an earlier net that seals the failed one in.

        Earlier maze routes become obstacles, and in a tight corridor the
        route that happens to go first can wall off the only path a later
        net has.  Try each earlier net as the victim, nearest to the failed
        net's bounding box first: rip it, route the failed net, then reroute
        the victim.  If either step fails the victim's original wire is
        restored and the next candidate is tried.  One level only — a
        victim's reroute never rips a third net.
        """
        bbox = Rect(min(request.source.x, request.target.x),
                    min(request.source.y, request.target.y),
                    max(request.source.x, request.target.x),
                    max(request.source.y, request.target.y))

        def distance(rects: List[Rect]) -> int:
            best = None
            for rect in rects:
                dx = max(bbox.x1 - rect.x2, rect.x1 - bbox.x2, 0)
                dy = max(bbox.y1 - rect.y2, rect.y1 - bbox.y2, 0)
                if best is None or dx + dy < best:
                    best = dx + dy
            return best if best is not None else 0

        candidates = sorted(self._drawn.items(),
                            key=lambda item: distance(item[1][1]))
        for victim_name, (shape, rects, victim_request) in candidates:
            if victim_name == request.name:
                continue
            obs_metrics.counter("pnr.ripup.attempts").inc()
            self._undraw(cell, victim_name)
            try:
                net = self.route_one(cell, request)
            except (RoutingError, BudgetExceeded):
                net = self._retry_fine(cell, request)
            if net is None:
                self._restore(cell, victim_name, shape, rects, victim_request)
                continue
            try:
                victim_net = self.route_one(cell, victim_request)
            except (RoutingError, BudgetExceeded):
                victim_net = self._retry_fine(cell, victim_request)
            if victim_net is None:
                # The victim can no longer route around the new wire: undo.
                self._undraw(cell, request.name)
                self._restore(cell, victim_name, shape, rects, victim_request)
                continue
            for index, routed in enumerate(report.routed):
                if routed.name == victim_name:
                    report.routed[index] = victim_net
                    break
            return net
        return None

    def _undraw(self, cell: Cell, name: str) -> None:
        shape, rects, _ = self._drawn.pop(name)
        try:
            cell.shapes.remove(shape)
        except ValueError:
            pass
        self.maze.remove_obstacles(rects)

    def _restore(self, cell: Cell, name: str, shape, rects: List[Rect],
                 request: RouteRequest) -> None:
        cell.shapes.append(shape)
        self.maze.add_obstacles(rects)
        self._drawn[name] = (shape, rects, request)

    # -- river-corridor fast path ----------------------------------------------------

    def _try_river(self, cell: Cell, group: List[RouteRequest],
                   side: str) -> Optional[List[RoutedNet]]:
        """Route a whole side's pad connections as one planar river channel.

        Applicable when the group has two or more nets, both terminal rows
        are ordered identically left-to-right with room for vertical runs,
        and the corridor between the rows contains no blockage.  Returns
        ``None`` (try the maze) otherwise.
        """
        if len(group) < 2:
            return None
        ordered = sorted(group, key=lambda r: r.source.x)
        sources = [r.source for r in ordered]
        targets = [r.target for r in ordered]
        if [t.x for t in targets] != sorted(t.x for t in targets):
            return None
        min_gap = self.wire_width + self.spacing
        for row in (sources, targets):
            if any(b.x - a.x < min_gap for a, b in zip(row, row[1:])):
                return None
        if side == "south":
            bottom, top = sources, targets
        else:
            bottom, top = targets, sources
        if not all(b.y < t.y for b, t in zip(bottom, top)):
            return None
        floor = max(p.y for p in bottom)
        ceiling = min(p.y for p in top)
        jogs = sum(1 for b, t in zip(bottom, top) if b.x != t.x)
        pitch = self.pitch + 1
        if floor + (jogs + 1) * pitch >= ceiling:
            return None
        corridor = Rect(min(p.x for p in bottom + top) - min_gap, floor + 1,
                        max(p.x for p in bottom + top) + min_gap, ceiling - 1)
        exempt = self.maze._exempt_ids(*(bottom + top))
        blocked = [i for i in self.maze._index.query(
            corridor.expanded(self.spacing), strict=True) if i not in exempt]
        if blocked or any(corridor.expanded(self.spacing).overlaps(r, strict=True)
                          for r in self.maze._routed_rects):
            return None
        try:
            route = river_route(cell, bottom, top, layer=self.layer,
                                wire_width=self.wire_width, pitch=pitch,
                                start_y=floor, spacing=self.spacing)
        except RiverRoutingError:
            return None
        routed: List[RoutedNet] = []
        for request, points in zip(ordered, route.wires):
            rects = _wire_rects(points, self.wire_width)
            self.maze.add_obstacles(rects)
            routed.append(RoutedNet(request.name, list(points),
                                    _length(points), method="river"))
        return routed

    def _draw(self, cell: Cell, request: RouteRequest,
              points: List[Point]) -> None:
        if len(points) < 2:
            return
        shape = cell.add_wire(self.layer, points, self.wire_width)
        rects = shape.as_rects()
        self.maze.add_obstacles(rects)
        self._drawn[request.name] = (shape, rects, request)


# -- geometry helpers ---------------------------------------------------------------


def _attach(terminal: Point, points: List[Point], prepend: bool) -> List[Point]:
    """Join an off-grid terminal to the grid path with an L-tap."""
    anchor = points[0] if prepend else points[-1]
    if terminal == anchor:
        return points
    if terminal.x == anchor.x or terminal.y == anchor.y:
        joint: List[Point] = [terminal]
    else:
        joint = [terminal, Point(terminal.x, anchor.y)]
    if prepend:
        return joint + points
    return points + list(reversed(joint))


def _simplify(points: List[Point]) -> List[Point]:
    """Drop collinear intermediate points."""
    if len(points) < 3:
        return points
    out = [points[0]]
    for i in range(1, len(points) - 1):
        prev, cur, nxt = out[-1], points[i], points[i + 1]
        if (prev.x == cur.x == nxt.x) or (prev.y == cur.y == nxt.y):
            continue
        out.append(cur)
    out.append(points[-1])
    return out


def _length(points: Sequence[Point]) -> int:
    return sum(abs(a.x - b.x) + abs(a.y - b.y)
               for a, b in zip(points, points[1:]))


def _wire_rects(points: Sequence[Point], width: int) -> List[Rect]:
    half = width // 2
    other = width - half
    rects: List[Rect] = []
    for a, b in zip(points, points[1:]):
        if a.y == b.y:
            x1, x2 = sorted((a.x, b.x))
            rects.append(Rect(x1 - half, a.y - half, x2 + other, a.y + other))
        else:
            y1, y2 = sorted((a.y, b.y))
            rects.append(Rect(a.x - half, y1 - half, a.x + other, y2 + other))
    return rects
