"""Place & route: wirelength-driven placement and obstacle-aware routing.

The assembler's original flow packed blocks by height and drew blind
L-shaped pad wires straight across the core; ``repro.pnr`` replaces both
halves.  :mod:`repro.pnr.placement` refines the shelf packing with
simulated annealing on half-perimeter wirelength over the pad+block
connection list, and :mod:`repro.pnr.router` routes connections on a grid
with a Lee/Dijkstra maze search that queries the spatial index for
blockages — placed blocks, the pad ring, and previously routed nets —
falling back to the planar river router inside clean corridors.
"""

from repro.pnr.placement import PlacementReport, refine_placement
from repro.pnr.router import (
    MazeRouter,
    PnrRouter,
    RouteRequest,
    RoutedNet,
    RoutingError,
    RoutingReport,
)

__all__ = [
    "MazeRouter",
    "PlacementReport",
    "PnrRouter",
    "RouteRequest",
    "RoutedNet",
    "RoutingError",
    "RoutingReport",
    "refine_placement",
]
