"""Content-addressed artifact store for analysis results.

Two halves:

* :mod:`repro.store.hashing` — canonical content hashes: Merkle-style
  cell digests (rename-invariant, structurally deduping), technology
  digests, netlist digests.
* :mod:`repro.store.artifact` — the stores those hashes key:
  :class:`MemoryStore` (LRU, byte-budgeted), :class:`DiskStore` (durable,
  atomic, checksummed — the ``REPRO_STORE`` directory) and
  :class:`TieredStore` (memory over disk).  :func:`default_store` builds
  the right one from the environment.

Together they make every analysis cache keyed by *what the design is*
rather than *which objects happen to hold it*, so warm starts survive
process restarts and identical subtrees share artifacts across designs.
"""

from repro.store.artifact import (
    DEFAULT_MEMORY_BUDGET,
    ArtifactStore,
    DiskStore,
    MemoryStore,
    StoreCorruption,
    StoreFormatMismatch,
    TieredStore,
    default_store,
)
from repro.store.hashing import (
    cell_digest,
    content_hash,
    netlist_hash,
    technology_hash,
)

__all__ = [
    "ArtifactStore",
    "MemoryStore",
    "DiskStore",
    "TieredStore",
    "StoreCorruption",
    "StoreFormatMismatch",
    "default_store",
    "DEFAULT_MEMORY_BUDGET",
    "cell_digest",
    "content_hash",
    "netlist_hash",
    "technology_hash",
]
