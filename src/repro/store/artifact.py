"""Artifact stores: in-memory LRU and a durable content-addressed disk store.

An :class:`ArtifactStore` maps canonical content-hash keys (strings built
from :mod:`repro.store.hashing` digests) to analysis artifacts.  Three
implementations:

* :class:`MemoryStore` — an LRU with an optional byte budget, the warm
  in-process cache.  ``get`` returns the *same object* that was put, so
  composition fast paths keep their within-artifact identities.
* :class:`DiskStore` — durable blobs under a root directory (the
  ``REPRO_STORE`` knob).  Writes are atomic (temp file + ``os.replace``)
  and every blob carries a versioned envelope with a payload checksum, so
  a truncated, corrupted or format-incompatible blob is *detected*, not
  deserialized into a wrong answer: the damage surfaces as an ``STO0xx``
  diagnostic through :func:`repro.diagnostics.run_with_fallback`, the blob
  is discarded, and the caller recomputes — fatal under ``REPRO_STRICT=1``
  (honesty under damage, in the spirit of the robust-code literature in
  PAPERS.md).
* :class:`TieredStore` — memory over disk: gets promote disk hits into
  memory (one deserialization per process per artifact), puts pickle once
  and feed both tiers.

``None`` is not a storable value — every store uses it as the miss
sentinel — and no analysis artifact is ``None``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.diagnostics import (
    Diagnostic,
    DiagnosticError,
    Severity,
    run_with_fallback,
)

__all__ = [
    "ArtifactStore",
    "MemoryStore",
    "DiskStore",
    "TieredStore",
    "StoreCorruption",
    "StoreFormatMismatch",
    "default_store",
    "DEFAULT_MEMORY_BUDGET",
]

#: Envelope format version: bumped on any change to the blob layout or the
#: hashing scheme's meaning; mismatching blobs are recomputed, never read.
STORE_FORMAT = 1

_MAGIC = b"RSTO1\n"

#: Default byte budget of the in-memory tier (the on-disk tier is bounded
#: only by :meth:`DiskStore.gc`).
DEFAULT_MEMORY_BUDGET = 512 * 1024 * 1024


class StoreCorruption(DiagnosticError, ValueError):
    """A stored blob failed verification (magic, checksum, truncation)."""

    default_code = "STO001"


class StoreFormatMismatch(DiagnosticError, ValueError):
    """A stored blob has an incompatible envelope format version."""

    default_code = "STO002"


def _store_error(cls, code: str, message: str):
    return cls(message, Diagnostic(Severity.ERROR, code, message,
                                   None, None, "store"))


class ArtifactStore:
    """Interface of every artifact store (see the module docstring)."""

    def get(self, key: str):
        """The stored value, or ``None`` on a miss."""
        raise NotImplementedError

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (``None`` is not storable)."""
        raise NotImplementedError

    def evict(self, key: str) -> bool:
        """Drop one entry (memory tiers only); True if it existed."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        """Hit/miss/put counters plus occupancy."""
        raise NotImplementedError

    def gc(self, keep: Iterable[str]) -> int:
        """Drop every entry whose key is not in ``keep``; returns count."""
        raise NotImplementedError

    @property
    def persistent_dir(self) -> Optional[str]:
        """Root directory of the durable tier, or ``None`` if memory-only."""
        return None


class MemoryStore(ArtifactStore):
    """In-process LRU over live objects, optionally byte-budgeted.

    Sizes are measured by pickling at put time (the put path is the
    artifact *build* path, so the measurement cost is amortized against
    real analysis work; the hit path never pickles).  When a budget is
    set, least-recently-used entries are dropped until the store fits —
    except the entry just inserted, which always survives its own put.
    """

    def __init__(self, budget_bytes: Optional[int] = DEFAULT_MEMORY_BUDGET):
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[str, Tuple[object, int]]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0

    def get(self, key: str):
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry[0]

    def _measure(self, value) -> int:
        if self.budget_bytes is None:
            return 0
        try:
            return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:            # unpicklable: budget cannot see it
            return 0

    def put(self, key: str, value, size: Optional[int] = None) -> None:
        assert value is not None, "None is the miss sentinel, not a value"
        if size is None:
            size = self._measure(value)
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (value, size)
        self._bytes += size
        self._puts += 1
        if self.budget_bytes is not None:
            while self._bytes > self.budget_bytes and len(self._entries) > 1:
                victim, (_, victim_size) = self._entries.popitem(last=False)
                if victim == key:    # never evict the entry just inserted
                    self._entries[victim] = (value, size)
                    self._entries.move_to_end(victim, last=False)
                    break
                self._bytes -= victim_size
                self._evictions += 1

    def evict(self, key: str) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._bytes -= entry[1]
        self._evictions += 1
        return True

    def gc(self, keep: Iterable[str]) -> int:
        keep_set = set(keep)
        doomed = [key for key in self._entries if key not in keep_set]
        for key in doomed:
            self.evict(key)
        return len(doomed)

    def stats(self) -> Dict[str, object]:
        return {"hits": self._hits, "misses": self._misses,
                "puts": self._puts, "evictions": self._evictions,
                "entries": len(self._entries), "bytes": self._bytes}

    def __len__(self) -> int:
        return len(self._entries)


class DiskStore(ArtifactStore):
    """Durable blobs under ``root`` (see the module docstring).

    Blob layout: ``objects/<hh>/<sha256-of-key>.blob`` where ``hh`` is the
    first two hex digits (git-style fan-out).  Envelope::

        b"RSTO1\\n" + "%08x" % header_len + b"\\n" + header_json + payload

    with ``header_json`` carrying the format version, the full key, the
    payload length and its SHA-256.  Reads verify all of it before
    unpickling; writes go through a temp file and ``os.replace`` so a
    crashed writer leaves either the old blob or the new one, never a
    torn one.
    """

    def __init__(self, root: str):
        self.root = root
        self._objects = os.path.join(root, "objects")
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._corrupt = 0
        self._bytes_written = 0

    # -- paths ---------------------------------------------------------------

    def _path(self, key: str) -> str:
        name = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(self._objects, name[:2], name + ".blob")

    # -- reading -------------------------------------------------------------

    @staticmethod
    def _parse_header(blob: bytes) -> Dict[str, object]:
        if not blob.startswith(_MAGIC):
            raise _store_error(StoreCorruption, "STO001",
                               "artifact blob has a bad magic header")
        rest = blob[len(_MAGIC):]
        if len(rest) < 9 or rest[8:9] != b"\n":
            raise _store_error(StoreCorruption, "STO001",
                               "artifact blob header length is truncated")
        try:
            header_len = int(rest[:8], 16)
            header = json.loads(rest[9:9 + header_len])
        except (ValueError, UnicodeDecodeError):
            raise _store_error(StoreCorruption, "STO001",
                               "artifact blob header is unreadable")
        if not isinstance(header, dict):
            raise _store_error(StoreCorruption, "STO001",
                               "artifact blob header is not an object")
        header["_payload_start"] = len(_MAGIC) + 9 + header_len
        return header

    def _parse_payload(self, blob: bytes, header: Dict[str, object], key: str):
        payload = blob[header["_payload_start"]:]
        if header.get("key") != key:
            raise _store_error(StoreCorruption, "STO001",
                               "artifact blob key does not match its path")
        if len(payload) != header.get("payload_len"):
            raise _store_error(
                StoreCorruption, "STO001",
                f"artifact blob payload is truncated "
                f"({len(payload)} of {header.get('payload_len')} bytes)")
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise _store_error(StoreCorruption, "STO001",
                               "artifact blob payload checksum mismatch")
        try:
            value = pickle.loads(payload)
        except Exception as exc:
            raise _store_error(StoreCorruption, "STO001",
                               f"artifact blob payload failed to "
                               f"deserialize ({type(exc).__name__}: {exc})")
        if value is None:
            raise _store_error(StoreCorruption, "STO001",
                               "artifact blob deserialized to None")
        return value

    def get(self, key: str):
        found = self.get_sized(key)
        return None if found is None else found[0]

    def get_sized(self, key: str):
        """Like :meth:`get`, but returns ``(value, payload_len)`` on a hit.

        The payload length is the honest pickled size of the value;
        :class:`TieredStore` promotes with it so a multi-megabyte artifact
        is never re-pickled just to be measured.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except (FileNotFoundError, NotADirectoryError):
            self._misses += 1
            return None
        label = f"artifact store blob for {key!r}"

        def discard():
            """Serial-recompute fallback: drop the bad blob, report a miss."""
            self._corrupt += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None

        header = run_with_fallback(label, lambda: self._parse_header(blob),
                                   discard, code="STO001")
        if header is None:
            self._misses += 1
            return None
        if header.get("format") != STORE_FORMAT:
            def mismatch():
                raise _store_error(
                    StoreFormatMismatch, "STO002",
                    f"artifact blob format {header.get('format')!r} does "
                    f"not match this toolchain's format {STORE_FORMAT}")

            run_with_fallback(label, mismatch, discard, code="STO002")
            self._misses += 1
            return None
        value = run_with_fallback(
            label, lambda: self._parse_payload(blob, header, key),
            discard, code="STO001")
        if value is None:
            self._misses += 1
            return None
        self._hits += 1
        return value, len(blob) - header["_payload_start"]

    # -- writing -------------------------------------------------------------

    def put(self, key: str, value) -> None:
        assert value is not None, "None is the miss sentinel, not a value"
        self.put_payload(key, pickle.dumps(
            value, protocol=pickle.HIGHEST_PROTOCOL))

    def put_payload(self, key: str, payload: bytes) -> None:
        """Store an already-pickled payload (one pickling for both tiers)."""

        def write() -> bool:
            header = json.dumps({
                "format": STORE_FORMAT,
                "key": key,
                "payload_len": len(payload),
                "payload_sha256": hashlib.sha256(payload).hexdigest(),
            }, sort_keys=True).encode("utf-8")
            blob = _MAGIC + b"%08x\n" % len(header) + header + payload
            path = self._path(key)
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            handle, temp_path = tempfile.mkstemp(dir=directory,
                                                 suffix=".tmp")
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(blob)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.remove(temp_path)
                except OSError:
                    pass
                raise
            self._bytes_written += len(blob)
            return True

        # A write failure (full disk, permissions) degrades to "not
        # persisted" with a warning — the in-memory tier still has the
        # artifact — and is fatal under REPRO_STRICT=1 like every other
        # guarded fallback.
        if run_with_fallback(f"artifact store write for {key!r}", write,
                             lambda: False, code="STO003"):
            self._puts += 1

    # -- maintenance ---------------------------------------------------------

    def _blob_paths(self) -> List[str]:
        paths: List[str] = []
        if not os.path.isdir(self._objects):
            return paths
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".blob"):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    def evict(self, key: str) -> bool:
        try:
            os.remove(self._path(key))
            return True
        except OSError:
            return False

    def keys(self) -> List[str]:
        """Keys of every readable blob (corrupt blobs are skipped)."""
        found: List[str] = []
        for path in self._blob_paths():
            try:
                with open(path, "rb") as handle:
                    header = self._parse_header(handle.read())
                found.append(header["key"])
            except (OSError, StoreCorruption, KeyError):
                continue
        return found

    def gc(self, keep: Iterable[str]) -> int:
        """Delete every blob whose key is not in ``keep``; returns count.

        Unreadable blobs are deleted too: they can never serve a hit.
        """
        keep_paths = {self._path(key) for key in keep}
        removed = 0
        for path in self._blob_paths():
            if path not in keep_paths:
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, object]:
        paths = self._blob_paths()
        on_disk = 0
        for path in paths:
            try:
                on_disk += os.path.getsize(path)
            except OSError:
                pass
        return {"hits": self._hits, "misses": self._misses,
                "puts": self._puts, "corrupt": self._corrupt,
                "entries": len(paths), "bytes": on_disk,
                "bytes_written": self._bytes_written}


class TieredStore(ArtifactStore):
    """Memory over disk: promote on disk hit, pickle once on put."""

    def __init__(self, memory: MemoryStore, disk: DiskStore):
        self.memory = memory
        self.disk = disk
        self._hits = 0
        self._misses = 0
        self._puts = 0

    def get(self, key: str):
        value = self.memory.get(key)
        if value is None:
            found = self.disk.get_sized(key)
            if found is not None:
                # Promote using the blob's payload length as the size —
                # never re-pickle a multi-megabyte artifact just to
                # measure it.
                value, size = found
                self.memory.put(key, value, size=size)
        if value is None:
            self._misses += 1
            return None
        self._hits += 1
        return value

    def put(self, key: str, value) -> None:
        assert value is not None, "None is the miss sentinel, not a value"
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # Unpicklable artifacts stay in-memory only.
            self.memory.put(key, value, size=0)
            self._puts += 1
            return
        self.memory.put(key, value, size=len(payload))
        self.disk.put_payload(key, payload)
        self._puts += 1

    def evict(self, key: str) -> bool:
        """Drop from the *memory* tier only (disk cleanup is gc's job)."""
        return self.memory.evict(key)

    def gc(self, keep: Iterable[str]) -> int:
        keep_list = list(keep)
        return self.memory.gc(keep_list) + self.disk.gc(keep_list)

    def stats(self) -> Dict[str, object]:
        return {"hits": self._hits, "misses": self._misses,
                "puts": self._puts,
                "memory": self.memory.stats(), "disk": self.disk.stats()}

    @property
    def persistent_dir(self) -> Optional[str]:
        return self.disk.root


def default_store() -> ArtifactStore:
    """The store a fresh analyzer uses: memory, plus disk under REPRO_STORE.

    Always a *fresh* memory tier (sharing live objects between analyzers
    is the caller's explicit choice, made by passing one store around);
    the disk tier, when configured, is what different analyzers — and
    different processes — share.
    """
    from repro import config

    directory = config.store_dir()
    memory = MemoryStore()
    if directory is None:
        return memory
    return TieredStore(memory, DiskStore(directory))
