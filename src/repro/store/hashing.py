"""Canonical content hashes for designs, technologies and netlists.

Every hash here is a hex SHA-256 over *primitive* tokens (ints, strings,
enum names) — never Python's salted ``hash()`` and never object ids — so
the same design content produces the same digest in every process, which
is what lets the persistent artifact store (:mod:`repro.store.artifact`)
serve one process's analysis artifacts to another.

Cell digests are Merkle-style: a cell's digest covers its own geometry,
labels and ports (:meth:`repro.layout.cell.Cell.content_items`) plus the
``(child digest, orientation, translation)`` of every placed instance.
Two consequences the test suite pins:

* **rename invariance** — cell names and instance names are excluded, so
  renaming never invalidates (or fails to share) an artifact;
* **structural dedupe** — two independently built identical subtrees
  collide on the same digest, across distinct :class:`Cell` objects and
  across processes, so a library cell shared by many designs is analyzed
  once per technology, ever.

Digests are memoized per cell, keyed weakly, and validated against the
cell's transitive mutation counter (``subtree_version``), so rehashing an
unchanged subtree costs two dict lookups.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Dict, Tuple

__all__ = [
    "cell_digest",
    "content_hash",
    "technology_hash",
    "netlist_hash",
]

#: Version tag folded into every digest: bump when the token scheme
#: changes so stale persisted artifacts miss instead of deserializing into
#: a different meaning.
_SCHEME = b"repro-hash/1\n"

# Cell -> (subtree_version, digest).  Weakly keyed: dropping a design
# generation drops its memo entries.  The subtree version bumps
# transitively on any descendant mutation (Cell._mutated), so a single
# integer compare validates the whole subtree's memo.
_CELL_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def cell_digest(cell) -> str:
    """Merkle content digest of a cell subtree (hex SHA-256).

    Covers geometry, labels, ports and child placements; excludes the
    cell's name and instance names.  See the module docstring for the
    invariants.
    """
    memo = _CELL_MEMO.get(cell)
    if memo is not None and memo[0] == cell.subtree_version:
        return memo[1]
    hasher = hashlib.sha256(_SCHEME)
    for item in cell.content_items():
        hasher.update(repr(item).encode("utf-8"))
        hasher.update(b"\n")
    for instance in cell.instances:
        child = cell_digest(instance.cell)
        transform = instance.transform
        hasher.update(
            f"I {child} {transform.orientation.name} "
            f"{transform.translation.x} {transform.translation.y}\n"
            .encode("utf-8"))
    digest = hasher.hexdigest()
    _CELL_MEMO[cell] = (cell.subtree_version, digest)
    return digest


def technology_hash(technology) -> str:
    """Digest of everything analysis outputs can depend on in a technology.

    Layers (names, purposes, GDS numbers), rules (kind, layers, value and
    the ``name`` that surfaces in :class:`DrcViolation.rule_name`), the
    lambda scale and the electrical properties all participate; two
    technologies hashing alike produce identical DRC/extraction/timing
    results on identical geometry.
    """
    hasher = hashlib.sha256(_SCHEME)
    hasher.update(f"T {technology.name} {technology.lambda_nm}\n".encode())
    for layer in technology.layers:
        hasher.update(
            f"L {layer.name} {layer.cif_name} {layer.purpose.name} "
            f"{layer.gds_number}\n".encode())
    for rule in technology.rules:
        hasher.update(
            f"R {rule.kind.name} {','.join(rule.layers)} {rule.value} "
            f"{rule.name}\n".encode())
    for key in sorted(technology.properties):
        hasher.update(f"P {key} {technology.properties[key]!r}\n".encode())
    return hasher.hexdigest()


def content_hash(cell, orientation, technology) -> str:
    """The canonical artifact-store digest of ``(cell, orientation, technology)``.

    This is the public key-derivation entry point: hierarchical analysis
    artifacts are pure functions of exactly this triple (plus the
    analyzer's composition threshold, which the analyzer folds into its
    store keys itself).
    """
    hasher = hashlib.sha256(_SCHEME)
    hasher.update(cell_digest(cell).encode())
    hasher.update(f" {orientation.name} ".encode())
    hasher.update(technology_hash(technology).encode())
    return hasher.hexdigest()


def netlist_hash(module) -> str:
    """Digest of a structural netlist (:class:`repro.netlist.module.Module`).

    Covers the module name, every net (name + port flags) and every
    instance (name, kind, connections) in declaration order; sub-module
    kinds hash recursively with within-call memoization.  Net and instance
    names *are* included — unlike layout cells, they surface directly in
    compiled-kernel outputs (``net_names``, ``gate_names``, traces).
    """
    memo: Dict[int, str] = {}

    def module_digest(mod) -> str:
        got = memo.get(id(mod))
        if got is not None:
            return got
        hasher = hashlib.sha256(_SCHEME)
        hasher.update(f"M {mod.name}\n".encode())
        for net in mod.nets.values():
            hasher.update(
                f"N {net.name} {int(net.is_input)} {int(net.is_output)}\n"
                .encode())
        for instance in mod.instances:
            if instance.is_primitive:
                kind = instance.kind.value
            else:
                kind = "sub:" + module_digest(instance.kind)
            ports = " ".join(f"{port}={net}" for port, net
                             in instance.connections.items())
            hasher.update(f"G {instance.name} {kind} {ports}\n".encode())
        digest = hasher.hexdigest()
        memo[id(mod)] = digest
        return digest

    return module_digest(module)
