"""Geometric substrate for the silicon compiler.

All layout geometry is expressed in integer *lambda-hundredths* (centilambda)
or plain integer lambda units, on a Manhattan-dominant grid.  The package
provides points, orthogonal transforms (the CIF transform group: mirror,
rotate by multiples of 90 degrees, translate), rectangles, polygons, paths
and bounding boxes.

The design follows the Caltech Intermediate Form model of geometry: every
primitive can be reduced to polygons, and transforms compose left-to-right
exactly as CIF call transforms do.
"""

from repro.geometry.point import Point, manhattan_distance
from repro.geometry.transform import Transform, Orientation
from repro.geometry.rect import Rect
from repro.geometry.polygon import Polygon, polygon_area, polygon_centroid
from repro.geometry.path import Path, path_to_polygon
from repro.geometry.bbox import BoundingBox, union_bbox
from repro.geometry.index import SpatialIndex, GridIndex, BruteForceIndex, build_index

__all__ = [
    "Point",
    "manhattan_distance",
    "Transform",
    "Orientation",
    "Rect",
    "SpatialIndex",
    "GridIndex",
    "BruteForceIndex",
    "build_index",
    "Polygon",
    "polygon_area",
    "polygon_centroid",
    "Path",
    "path_to_polygon",
    "BoundingBox",
    "union_bbox",
]
