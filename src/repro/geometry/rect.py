"""Axis-aligned rectangles, the workhorse of Manhattan layout."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.geometry.point import Point
from repro.geometry.transform import Transform


@dataclass(frozen=True, order=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle with integer corners.

    Stored as lower-left ``(x1, y1)`` and upper-right ``(x2, y2)`` with
    ``x1 <= x2`` and ``y1 <= y2``.  Degenerate (zero-width or zero-height)
    rectangles are permitted; they are useful as construction aids but are
    rejected by the layout database when added as mask geometry.  Slotted
    because flattening and extraction allocate them by the million.
    """

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            raise ValueError(
                f"malformed rectangle: ({self.x1},{self.y1})-({self.x2},{self.y2})"
            )

    # Explicit tuple state: the generated slots+frozen pickle path calls
    # dataclasses.fields() once per object, which dominates artifact-store
    # deserialization when blobs carry hundreds of thousands of rectangles.
    def __getstate__(self) -> Tuple[int, int, int, int]:
        return (self.x1, self.y1, self.x2, self.y2)

    def __setstate__(self, state: Tuple[int, int, int, int]) -> None:
        object.__setattr__(self, "x1", state[0])
        object.__setattr__(self, "y1", state[1])
        object.__setattr__(self, "x2", state[2])
        object.__setattr__(self, "y2", state[3])

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_points(a: Point, b: Point) -> "Rect":
        """Rectangle spanning two arbitrary corner points."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def from_center(center: Point, width: int, height: int) -> "Rect":
        """Rectangle of the given size centred on ``center``.

        Width and height must be even so that corners stay on the integer
        grid; the CIF box primitive has the same constraint for on-grid
        centres.
        """
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        if width % 2 or height % 2:
            raise ValueError("centered rectangles require even width and height")
        half_w, half_h = width // 2, height // 2
        return Rect(center.x - half_w, center.y - half_h, center.x + half_w, center.y + half_h)

    @staticmethod
    def from_size(origin: Point, width: int, height: int) -> "Rect":
        """Rectangle with lower-left corner at ``origin``."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return Rect(origin.x, origin.y, origin.x + width, origin.y + height)

    # -- basic properties ---------------------------------------------------

    @property
    def width(self) -> int:
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x1 + self.x2) // 2, (self.y1 + self.y2) // 2)

    @property
    def lower_left(self) -> Point:
        return Point(self.x1, self.y1)

    @property
    def upper_right(self) -> Point:
        return Point(self.x2, self.y2)

    @property
    def lower_right(self) -> Point:
        return Point(self.x2, self.y1)

    @property
    def upper_left(self) -> Point:
        return Point(self.x1, self.y2)

    @property
    def is_degenerate(self) -> bool:
        return self.width == 0 or self.height == 0

    def corners(self) -> List[Point]:
        """Corners in counter-clockwise order starting at the lower-left."""
        return [self.lower_left, self.lower_right, self.upper_right, self.upper_left]

    # -- geometric predicates ------------------------------------------------

    def contains_point(self, point: Point, strict: bool = False) -> bool:
        if strict:
            return self.x1 < point.x < self.x2 and self.y1 < point.y < self.y2
        return self.x1 <= point.x <= self.x2 and self.y1 <= point.y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def overlaps(self, other: "Rect", strict: bool = True) -> bool:
        """True if the rectangles share interior area (strict) or touch."""
        if strict:
            return (
                self.x1 < other.x2
                and other.x1 < self.x2
                and self.y1 < other.y2
                and other.y1 < self.y2
            )
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    def touches(self, other: "Rect") -> bool:
        """True if the rectangles abut or overlap (share at least an edge point)."""
        return self.overlaps(other, strict=False)

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` if they do not touch."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x1 > x2 or y1 > y2:
            return None
        return Rect(x1, y1, x2, y2)

    def distance_to(self, other: "Rect") -> int:
        """Rectilinear gap between two rectangles (0 if they touch/overlap)."""
        dx = max(self.x1 - other.x2, other.x1 - self.x2, 0)
        dy = max(self.y1 - other.y2, other.y1 - self.y2, 0)
        return max(dx, dy) if (dx == 0 or dy == 0) else dx + dy

    # -- derived rectangles ---------------------------------------------------

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def expanded(self, margin: int) -> "Rect":
        """Grow (or shrink, for negative margin) by ``margin`` on every side."""
        rect = Rect.from_points(
            Point(self.x1 - margin, self.y1 - margin),
            Point(self.x2 + margin, self.y2 + margin),
        )
        if margin < 0 and (self.width + 2 * margin < 0 or self.height + 2 * margin < 0):
            raise ValueError("shrink margin larger than rectangle")
        return rect

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def transformed(self, transform: Transform) -> "Rect":
        """Apply an orthogonal transform; the result is again axis-aligned."""
        a = transform.apply(self.lower_left)
        b = transform.apply(self.upper_right)
        return Rect.from_points(a, b)

    def snapped(self, grid: int) -> "Rect":
        return Rect.from_points(self.lower_left.snapped(grid), self.upper_right.snapped(grid))

    # -- decomposition ---------------------------------------------------------

    def subtract(self, hole: "Rect") -> List["Rect"]:
        """Return ``self`` minus ``hole`` as a list of disjoint rectangles."""
        clipped = self.intersection(hole)
        if clipped is None or clipped.is_degenerate:
            return [] if self.is_degenerate else [self]
        pieces: List[Rect] = []
        if clipped.y2 < self.y2:  # above
            pieces.append(Rect(self.x1, clipped.y2, self.x2, self.y2))
        if self.y1 < clipped.y1:  # below
            pieces.append(Rect(self.x1, self.y1, self.x2, clipped.y1))
        if self.x1 < clipped.x1:  # left
            pieces.append(Rect(self.x1, clipped.y1, clipped.x1, clipped.y2))
        if clipped.x2 < self.x2:  # right
            pieces.append(Rect(clipped.x2, clipped.y1, self.x2, clipped.y2))
        return [piece for piece in pieces if not piece.is_degenerate]


def merged_area(rects: Iterable[Rect]) -> int:
    """Total area covered by a set of possibly-overlapping rectangles.

    Uses a simple coordinate-compression sweep; adequate for the design sizes
    this toolchain targets (thousands of rectangles per cell).
    """
    rect_list = [r for r in rects if not r.is_degenerate]
    if not rect_list:
        return 0
    xs = sorted({r.x1 for r in rect_list} | {r.x2 for r in rect_list})
    total = 0
    for left, right in zip(xs, xs[1:]):
        column_width = right - left
        if column_width == 0:
            continue
        spans: List[Tuple[int, int]] = sorted(
            (r.y1, r.y2) for r in rect_list if r.x1 <= left and r.x2 >= right
        )
        covered = 0
        current_start: Optional[int] = None
        current_end: Optional[int] = None
        for y1, y2 in spans:
            if current_end is None:
                current_start, current_end = y1, y2
            elif y1 <= current_end:
                current_end = max(current_end, y2)
            else:
                covered += current_end - current_start
                current_start, current_end = y1, y2
        if current_end is not None:
            covered += current_end - current_start
        total += covered * column_width
    return total
