"""Orthogonal layout transforms.

The transform group is the one CIF symbol calls support: mirroring about the
axes, rotation by multiples of 90 degrees, and translation.  A transform is
represented by an :class:`Orientation` (one of the eight elements of the
dihedral group D4) plus an integer translation, which is sufficient for all
Manhattan layout manipulation and round-trips exactly through CIF.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Tuple

from repro.geometry.point import Point


class Orientation(Enum):
    """The eight orientations of the square (D4 dihedral group).

    Naming follows the common layout convention: ``R0/R90/R180/R270`` are
    counter-clockwise rotations, ``MX`` mirrors about the y axis (negating x),
    ``MY`` mirrors about the x axis (negating y), and ``MXR90``/``MYR90`` are
    mirrors followed by a 90 degree rotation.
    """

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"
    MY = "MY"
    MXR90 = "MXR90"
    MYR90 = "MYR90"

    def apply(self, point: Point) -> Point:
        """Apply this orientation to a point about the origin."""
        matrix = _ORIENTATION_MATRICES[self]
        a, b, c, d = matrix
        return Point(a * point.x + b * point.y, c * point.x + d * point.y)

    def then(self, other: "Orientation") -> "Orientation":
        """Compose: first apply ``self``, then ``other``."""
        return _COMPOSITION[(self, other)]

    def inverse(self) -> "Orientation":
        return _INVERSES[self]

    @property
    def swaps_axes(self) -> bool:
        """True if the orientation maps horizontal extents to vertical ones."""
        a, b, c, d = _ORIENTATION_MATRICES[self]
        return a == 0

    @property
    def determinant(self) -> int:
        a, b, c, d = _ORIENTATION_MATRICES[self]
        return a * d - b * c


# Row-major 2x2 integer matrices (a, b, c, d) mapping (x, y) -> (ax+by, cx+dy).
_ORIENTATION_MATRICES = {
    Orientation.R0: (1, 0, 0, 1),
    Orientation.R90: (0, -1, 1, 0),
    Orientation.R180: (-1, 0, 0, -1),
    Orientation.R270: (0, 1, -1, 0),
    Orientation.MX: (-1, 0, 0, 1),
    Orientation.MY: (1, 0, 0, -1),
    Orientation.MXR90: (0, -1, -1, 0),
    Orientation.MYR90: (0, 1, 1, 0),
}

_MATRIX_TO_ORIENTATION = {matrix: o for o, matrix in _ORIENTATION_MATRICES.items()}


def _multiply(m1: Tuple[int, int, int, int], m2: Tuple[int, int, int, int]) -> Tuple[int, int, int, int]:
    a1, b1, c1, d1 = m1
    a2, b2, c2, d2 = m2
    return (
        a2 * a1 + b2 * c1,
        a2 * b1 + b2 * d1,
        c2 * a1 + d2 * c1,
        c2 * b1 + d2 * d1,
    )


_COMPOSITION = {}
_INVERSES = {}
for _first in Orientation:
    for _second in Orientation:
        _product = _multiply(_ORIENTATION_MATRICES[_first], _ORIENTATION_MATRICES[_second])
        _COMPOSITION[(_first, _second)] = _MATRIX_TO_ORIENTATION[_product]
for _o in Orientation:
    for _candidate in Orientation:
        if _COMPOSITION[(_o, _candidate)] is Orientation.R0:
            _INVERSES[_o] = _candidate
            break


@dataclass(frozen=True, slots=True)
class Transform:
    """An orientation followed by a translation.

    ``transform.apply(p)`` computes ``orientation(p) + translation``, matching
    the CIF call semantics where the transformation list is applied to the
    symbol's local coordinates to place it in the caller's space.
    """

    orientation: Orientation = Orientation.R0
    translation: Point = Point(0, 0)

    # Explicit tuple state: bypasses the per-object dataclasses.fields()
    # call in the generated slots+frozen pickle path (see Point/Rect).
    def __getstate__(self):
        return (self.orientation, self.translation)

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "orientation", state[0])
        object.__setattr__(self, "translation", state[1])

    @staticmethod
    def identity() -> "Transform":
        return Transform()

    @staticmethod
    def translate(dx: int, dy: int) -> "Transform":
        return Transform(Orientation.R0, Point(dx, dy))

    @staticmethod
    def rotate90(quarter_turns: int = 1) -> "Transform":
        turns = quarter_turns % 4
        orientation = [Orientation.R0, Orientation.R90, Orientation.R180, Orientation.R270][turns]
        return Transform(orientation, Point(0, 0))

    @staticmethod
    def mirror_x() -> "Transform":
        return Transform(Orientation.MX, Point(0, 0))

    @staticmethod
    def mirror_y() -> "Transform":
        return Transform(Orientation.MY, Point(0, 0))

    def apply(self, point: Point) -> Point:
        return self.orientation.apply(point) + self.translation

    def apply_all(self, points: Iterable[Point]) -> List[Point]:
        return [self.apply(p) for p in points]

    def then(self, other: "Transform") -> "Transform":
        """Compose transforms: first ``self``, then ``other``.

        ``(self.then(other)).apply(p) == other.apply(self.apply(p))``
        """
        orientation = self.orientation.then(other.orientation)
        translation = other.orientation.apply(self.translation) + other.translation
        return Transform(orientation, translation)

    def inverse(self) -> "Transform":
        inverse_orientation = self.orientation.inverse()
        inverse_translation = inverse_orientation.apply(-self.translation)
        return Transform(inverse_orientation, inverse_translation)

    def translated(self, dx: int, dy: int) -> "Transform":
        return Transform(self.orientation, self.translation + Point(dx, dy))

    @property
    def is_identity(self) -> bool:
        return self.orientation is Orientation.R0 and self.translation == Point(0, 0)
