"""Bounding-box accumulation helpers.

The layout database and the chip assembler need to accumulate bounding boxes
over heterogeneous geometry (rectangles, polygons, paths, instance extents);
``BoundingBox`` is a small mutable accumulator for that purpose, distinct
from the immutable :class:`~repro.geometry.rect.Rect` value type.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class BoundingBox:
    """Mutable accumulator for the extent of a collection of geometry."""

    def __init__(self) -> None:
        self._rect: Optional[Rect] = None

    @property
    def is_empty(self) -> bool:
        return self._rect is None

    def add_point(self, point: Point) -> None:
        self.add_rect(Rect(point.x, point.y, point.x, point.y))

    def add_rect(self, rect: Rect) -> None:
        if self._rect is None:
            self._rect = rect
        else:
            self._rect = self._rect.union(rect)

    def add_rects(self, rects: Iterable[Rect]) -> None:
        for rect in rects:
            self.add_rect(rect)

    def add_bbox(self, other: "BoundingBox") -> None:
        if not other.is_empty:
            self.add_rect(other.rect())

    def rect(self) -> Rect:
        """The accumulated extent.  Raises if nothing was added."""
        if self._rect is None:
            raise ValueError("bounding box is empty")
        return self._rect

    def rect_or(self, default: Rect) -> Rect:
        return self._rect if self._rect is not None else default

    @property
    def width(self) -> int:
        return 0 if self._rect is None else self._rect.width

    @property
    def height(self) -> int:
        return 0 if self._rect is None else self._rect.height

    @property
    def area(self) -> int:
        return 0 if self._rect is None else self._rect.area

    def __repr__(self) -> str:
        if self._rect is None:
            return "BoundingBox(empty)"
        r = self._rect
        return f"BoundingBox(({r.x1},{r.y1})-({r.x2},{r.y2}))"


def union_bbox(rects: Iterable[Rect]) -> Optional[Rect]:
    """Union extent of an iterable of rectangles, or ``None`` if empty."""
    box = BoundingBox()
    box.add_rects(rects)
    return None if box.is_empty else box.rect()
