"""Wire paths: centre-line plus width, as in the CIF ``W`` (wire) command.

Routers and the layout language describe interconnect as paths; for area
accounting, design-rule checking and extraction the path is expanded into
rectangles (one per Manhattan segment) with square-ended segments, which is
the conservative interpretation of the CIF wire primitive for Manhattan
geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geometry.point import Point, manhattan_distance
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.transform import Transform


@dataclass(frozen=True)
class Path:
    """A wire: an ordered list of centre-line points and a width.

    Only Manhattan segments (horizontal or vertical) may be expanded to
    rectangles; diagonal segments are preserved for CIF output but rejected
    by :meth:`to_rects`.
    """

    points: Tuple[Point, ...]
    width: int

    def __init__(self, points: Sequence[Point], width: int):
        if len(points) < 2:
            raise ValueError("a path needs at least two points")
        if width <= 0:
            raise ValueError("path width must be positive")
        deduped: List[Point] = [points[0]]
        for point in points[1:]:
            if point != deduped[-1]:
                deduped.append(point)
        if len(deduped) < 2:
            raise ValueError("a path needs at least two distinct points")
        object.__setattr__(self, "points", tuple(deduped))
        object.__setattr__(self, "width", width)

    @property
    def length(self) -> int:
        """Total rectilinear centre-line length."""
        return sum(
            manhattan_distance(a, b) for a, b in zip(self.points, self.points[1:])
        )

    @property
    def is_manhattan(self) -> bool:
        return all(
            a.x == b.x or a.y == b.y for a, b in zip(self.points, self.points[1:])
        )

    def segments(self) -> List[Tuple[Point, Point]]:
        return list(zip(self.points, self.points[1:]))

    def to_rects(self) -> List[Rect]:
        """Expand to one rectangle per segment with square end caps."""
        if not self.is_manhattan:
            raise ValueError("only Manhattan paths can be expanded to rectangles")
        half = self.width // 2
        other_half = self.width - half
        rects: List[Rect] = []
        for a, b in self.segments():
            if a.y == b.y:  # horizontal
                x_low, x_high = sorted((a.x, b.x))
                rects.append(Rect(x_low - half, a.y - half, x_high + other_half, a.y + other_half))
            else:  # vertical
                y_low, y_high = sorted((a.y, b.y))
                rects.append(Rect(a.x - half, y_low - half, a.x + other_half, y_high + other_half))
        return rects

    @property
    def bbox(self) -> Rect:
        rects = self.to_rects() if self.is_manhattan else None
        if rects:
            result = rects[0]
            for rect in rects[1:]:
                result = result.union(rect)
            return result
        xs = [p.x for p in self.points]
        ys = [p.y for p in self.points]
        half = self.width // 2
        return Rect(min(xs) - half, min(ys) - half, max(xs) + half, max(ys) + half)

    def translated(self, dx: int, dy: int) -> "Path":
        return Path([p.translated(dx, dy) for p in self.points], self.width)

    def transformed(self, transform: Transform) -> "Path":
        return Path(transform.apply_all(self.points), self.width)

    def reversed(self) -> "Path":
        return Path(list(reversed(self.points)), self.width)

    def extended_to(self, point: Point) -> "Path":
        """Return a new path with one more point appended."""
        return Path(list(self.points) + [point], self.width)


def path_to_polygon(path: Path) -> Polygon:
    """Approximate a Manhattan path's outline as a polygon via its rectangles.

    For single-segment paths the result is exact; for multi-segment paths the
    bounding outline of the union is approximated by the union bbox only when
    the path is a straight line, otherwise a ``ValueError`` directs callers to
    use :meth:`Path.to_rects`.
    """
    rects = path.to_rects()
    if len(rects) == 1:
        return Polygon.from_rect(rects[0])
    raise ValueError("multi-segment paths should be handled as rectangles; use to_rects()")
