"""Integer lattice points.

Layout coordinates are integers (lambda units or centilambda).  ``Point`` is
an immutable value type supporting the arithmetic needed by the layout
language: translation, scaling, component-wise min/max and rotation by
multiples of 90 degrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True, slots=True)
class Point:
    """A point on the integer layout grid.

    Points are immutable and hashable so they can be used as dictionary keys
    (e.g. by routers and extraction connectivity tracing).  Slotted because
    flattening and extraction allocate them by the million.
    """

    x: int
    y: int

    # Explicit tuple state: the generated slots+frozen pickle path calls
    # dataclasses.fields() once per object, which dominates artifact-store
    # deserialization when blobs carry hundreds of thousands of points.
    def __getstate__(self) -> Tuple[int, int]:
        return (self.x, self.y)

    def __setstate__(self, state: Tuple[int, int]) -> None:
        object.__setattr__(self, "x", state[0])
        object.__setattr__(self, "y", state[1])

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __mul__(self, factor: int) -> "Point":
        return Point(self.x * factor, self.y * factor)

    __rmul__ = __mul__

    def scaled(self, numerator: int, denominator: int = 1) -> "Point":
        """Scale by a rational factor, rounding to the nearest grid point."""
        if denominator == 0:
            raise ZeroDivisionError("point scale denominator must be non-zero")
        return Point(
            _round_half_away(self.x * numerator, denominator),
            _round_half_away(self.y * numerator, denominator),
        )

    def translated(self, dx: int, dy: int) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def rotated90(self, quarter_turns: int = 1) -> "Point":
        """Rotate counter-clockwise about the origin by 90° * quarter_turns."""
        turns = quarter_turns % 4
        x, y = self.x, self.y
        for _ in range(turns):
            x, y = -y, x
        return Point(x, y)

    def mirrored_x(self) -> "Point":
        """Mirror in x: (x, y) -> (-x, y) (CIF ``MX`` convention)."""
        return Point(-self.x, self.y)

    def mirrored_y(self) -> "Point":
        """Mirror in y: (x, y) -> (x, -y) (CIF ``MY`` convention)."""
        return Point(self.x, -self.y)

    def min_with(self, other: "Point") -> "Point":
        return Point(min(self.x, other.x), min(self.y, other.y))

    def max_with(self, other: "Point") -> "Point":
        return Point(max(self.x, other.x), max(self.y, other.y))

    def as_tuple(self) -> Tuple[int, int]:
        return (self.x, self.y)

    def snapped(self, grid: int) -> "Point":
        """Snap to the nearest multiple of ``grid`` in both coordinates."""
        if grid <= 0:
            raise ValueError("grid must be positive")
        return Point(_snap(self.x, grid), _snap(self.y, grid))

    def is_on_grid(self, grid: int) -> bool:
        return self.x % grid == 0 and self.y % grid == 0


ORIGIN = Point(0, 0)


def manhattan_distance(a: Point, b: Point) -> int:
    """Rectilinear distance between two points (wire-length metric)."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def _round_half_away(numerator: int, denominator: int) -> int:
    """Integer division rounding half away from zero (CIF scaling rule)."""
    if denominator < 0:
        numerator, denominator = -numerator, -denominator
    quotient, remainder = divmod(abs(numerator), denominator)
    if 2 * remainder >= denominator:
        quotient += 1
    return quotient if numerator >= 0 else -quotient


def _snap(value: int, grid: int) -> int:
    return _round_half_away(value, grid) * grid
