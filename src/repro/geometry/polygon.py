"""Simple polygons for non-rectangular mask geometry.

CIF supports arbitrary polygons; the silicon compiler mostly emits
rectangles, but butting contacts, bent transistors and pad structures are
more naturally expressed as polygons.  Polygons here are simple (non
self-intersecting) closed figures given as an ordered list of vertices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.transform import Transform


@dataclass(frozen=True)
class Polygon:
    """A closed polygon described by its vertices in order.

    The closing edge from the last vertex back to the first is implicit, as
    in the CIF ``P`` command.
    """

    vertices: Tuple[Point, ...]

    def __init__(self, vertices: Sequence[Point]):
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")
        object.__setattr__(self, "vertices", tuple(vertices))

    @staticmethod
    def from_rect(rect: Rect) -> "Polygon":
        return Polygon(rect.corners())

    @property
    def bbox(self) -> Rect:
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @property
    def area(self) -> float:
        return abs(self.signed_area)

    @property
    def signed_area(self) -> float:
        """Shoelace signed area: positive for counter-clockwise orientation."""
        total = 0
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return total / 2.0

    @property
    def is_counterclockwise(self) -> bool:
        return self.signed_area > 0

    @property
    def is_rectilinear(self) -> bool:
        """True if every edge is horizontal or vertical."""
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if a.x != b.x and a.y != b.y:
                return False
        return True

    def contains_point(self, point: Point) -> bool:
        """Even-odd rule point-in-polygon test (boundary counts as inside)."""
        if self._on_boundary(point):
            return True
        inside = False
        n = len(self.vertices)
        x, y = point.x, point.y
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if (a.y > y) != (b.y > y):
                x_cross = a.x + (b.x - a.x) * (y - a.y) / (b.y - a.y)
                if x < x_cross:
                    inside = not inside
        return inside

    def _on_boundary(self, point: Point) -> bool:
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            cross = (b.x - a.x) * (point.y - a.y) - (b.y - a.y) * (point.x - a.x)
            if cross != 0:
                continue
            if min(a.x, b.x) <= point.x <= max(a.x, b.x) and min(a.y, b.y) <= point.y <= max(a.y, b.y):
                return True
        return False

    def translated(self, dx: int, dy: int) -> "Polygon":
        return Polygon([v.translated(dx, dy) for v in self.vertices])

    def transformed(self, transform: Transform) -> "Polygon":
        return Polygon(transform.apply_all(self.vertices))

    def reversed(self) -> "Polygon":
        return Polygon(list(reversed(self.vertices)))

    def to_rect(self) -> Rect:
        """Convert back to a rectangle if the polygon is exactly one.

        Raises ``ValueError`` otherwise.
        """
        if len(self.vertices) != 4:
            raise ValueError("not a rectangle: wrong vertex count")
        bbox = self.bbox
        expected = set(bbox.corners())
        if set(self.vertices) != expected:
            raise ValueError("not a rectangle: vertices are not the bbox corners")
        return bbox


def polygon_area(polygon: Polygon) -> float:
    """Convenience wrapper over :attr:`Polygon.area`."""
    return polygon.area


def polygon_centroid(polygon: Polygon) -> Tuple[float, float]:
    """Centroid of a simple polygon (shoelace-weighted)."""
    signed = polygon.signed_area
    if signed == 0:
        xs = [v.x for v in polygon.vertices]
        ys = [v.y for v in polygon.vertices]
        return (sum(xs) / len(xs), sum(ys) / len(ys))
    cx = 0.0
    cy = 0.0
    n = len(polygon.vertices)
    for i in range(n):
        a = polygon.vertices[i]
        b = polygon.vertices[(i + 1) % n]
        cross = a.x * b.y - b.x * a.y
        cx += (a.x + b.x) * cross
        cy += (a.y + b.y) * cross
    return (cx / (6.0 * signed), cy / (6.0 * signed))


def decompose_rectilinear(polygon: Polygon) -> List[Rect]:
    """Decompose a rectilinear polygon into disjoint rectangles.

    Uses horizontal slab decomposition at every distinct y coordinate.  The
    polygon must be rectilinear and simple.
    """
    if not polygon.is_rectilinear:
        raise ValueError("decompose_rectilinear requires a rectilinear polygon")
    ys = sorted({v.y for v in polygon.vertices})
    rects: List[Rect] = []
    for y_low, y_high in zip(ys, ys[1:]):
        y_mid = (y_low + y_high) / 2.0
        # Find x intervals inside the polygon at this slab by casting a ray.
        crossings: List[float] = []
        n = len(polygon.vertices)
        for i in range(n):
            a = polygon.vertices[i]
            b = polygon.vertices[(i + 1) % n]
            if a.x == b.x:  # vertical edge
                lo, hi = sorted((a.y, b.y))
                if lo <= y_mid <= hi and lo < y_mid < hi:
                    crossings.append(a.x)
        crossings.sort()
        for left, right in zip(crossings[0::2], crossings[1::2]):
            rects.append(Rect(int(left), y_low, int(right), y_high))
    return [r for r in rects if not r.is_degenerate]
