"""Spatial indexing over rectangles.

Every analysis pass of the compiler (DRC, extraction, mask metrics) asks the
same three questions about large soups of rectangles:

* which rectangles touch / overlap a probe rectangle (``query``);
* which rectangles lie within some rectilinear distance of a probe
  (``neighbors`` — the spacing-rule question);
* which groups of rectangles are mutually connected by touching
  (``connected_components`` — the node-extraction / region-merge question).

Answering them with all-pairs scans is O(n^2) and dominates the runtime on
chip-scale layouts.  This module provides a uniform-grid bin index
(:class:`GridIndex`) that answers point queries in expected O(k) for k local
candidates, plus a sweep-line merge for connectivity, and a deliberately
naive :class:`BruteForceIndex` with identical semantics that serves as the
golden reference for equivalence tests.

Both implementations return candidate **ids** (positions in the indexed
rectangle list) in ascending order, so consumers that care about the exact
iteration order of the historical all-pairs loops get identical results.

These ordering contracts (ascending query ids; :meth:`UnionFind.components`
ordered by smallest member with members ascending, independent of union
call order) are what the tile-sharded engines in :mod:`repro.parallel`
build on: a worker's locally indexed ids map monotonically back to global
ids, and the parent's cross-tile union-find stitches per-tile edges into
exactly the serial component order — which is how sharded output stays
byte-identical to the serial engines for any worker count or tiling.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.rect import Rect

__all__ = ["SpatialIndex", "GridIndex", "BruteForceIndex", "UnionFind", "build_index"]


class SpatialIndex:
    """Common interface of the rectangle indexes.

    ``rects`` is the indexed list; ids returned by the query methods are
    positions in that list.  The index holds a reference to (not a copy of)
    the rectangles, which must not change while the index is alive.
    """

    def __init__(self, rects: Sequence[Rect]):
        self.rects: Sequence[Rect] = rects

    def __len__(self) -> int:
        return len(self.rects)

    # -- queries (implemented by subclasses) --------------------------------

    def query(self, rect: Rect, margin: int = 0, strict: bool = False) -> List[int]:
        """Ids of rectangles that touch ``rect`` grown by ``margin``.

        With ``strict=True`` only rectangles sharing interior area with the
        grown probe are returned (overlap, not mere abutment).
        """
        raise NotImplementedError

    def neighbors(self, rect: Rect, margin: int) -> List[int]:
        """Ids of rectangles whose rectilinear gap to ``rect`` is <= margin.

        Touching/overlapping rectangles have gap 0 and are included.
        """
        raise NotImplementedError

    def connected_components(self) -> List[List[int]]:
        """Groups of ids connected transitively by touching (closed overlap).

        Components are ordered by their smallest member and each component
        lists its members in ascending order, so the result is deterministic
        and independent of the index implementation.
        """
        raise NotImplementedError


class BruteForceIndex(SpatialIndex):
    """All-pairs reference implementation (the pre-index behaviour)."""

    def query(self, rect: Rect, margin: int = 0, strict: bool = False) -> List[int]:
        probe = rect.expanded(margin) if margin else rect
        return [i for i, r in enumerate(self.rects) if probe.overlaps(r, strict=strict)]

    def neighbors(self, rect: Rect, margin: int) -> List[int]:
        return [i for i, r in enumerate(self.rects) if rect.distance_to(r) <= margin]

    def connected_components(self) -> List[List[int]]:
        finder = UnionFind(len(self.rects))
        rects = self.rects
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                if rects[i].touches(rects[j]):
                    finder.union(i, j)
        return finder.components()


class GridIndex(SpatialIndex):
    """Uniform-grid bin index over rectangles.

    Every rectangle is registered in the grid cells its bounding box covers;
    queries gather candidates from the cells covered by the (grown) probe and
    then filter precisely.  The cell size defaults to roughly the mean
    rectangle side length, which keeps both the cells-per-rectangle and the
    rectangles-per-cell counts small for layout-shaped data.
    """

    def __init__(self, rects: Sequence[Rect], cell_size: Optional[int] = None):
        super().__init__(rects)
        if cell_size is None:
            cell_size = _pick_cell_size(rects)
        if cell_size < 1:
            raise ValueError("grid cell size must be >= 1")
        self.cell_size = cell_size
        bins: Dict[Tuple[int, int], List[int]] = {}
        size = cell_size
        for index, r in enumerate(rects):
            for bx in range(r.x1 // size, r.x2 // size + 1):
                for by in range(r.y1 // size, r.y2 // size + 1):
                    bucket = bins.get((bx, by))
                    if bucket is None:
                        bins[(bx, by)] = [index]
                    else:
                        bucket.append(index)
        self._bins = bins
        # Occupied bin extent: probe windows are clamped to it so that a
        # query with a huge margin cannot walk billions of empty bins.
        if bins:
            self._min_bx = min(bx for bx, _ in bins)
            self._max_bx = max(bx for bx, _ in bins)
            self._min_by = min(by for _, by in bins)
            self._max_by = max(by for _, by in bins)
        else:
            self._min_bx = self._max_bx = self._min_by = self._max_by = 0
        # Epoch-stamped dedupe scratchpad, reused across queries so a query
        # costs O(local candidates), not O(total rectangles).
        self._stamp = [0] * len(rects)
        self._epoch = 0

    def _buckets_in(self, x1: int, y1: int, x2: int, y2: int):
        """Occupied buckets whose bin intersects the coordinate window."""
        size = self.cell_size
        bins = self._bins
        bx1 = max(x1 // size, self._min_bx)
        bx2 = min(x2 // size, self._max_bx)
        by1 = max(y1 // size, self._min_by)
        by2 = min(y2 // size, self._max_by)
        if bx1 > bx2 or by1 > by2:
            return
        if (bx2 - bx1 + 1) * (by2 - by1 + 1) >= len(bins):
            # Window covers most of the grid: walking the occupied bins is
            # cheaper than scanning the (possibly enormous) window.
            for (bx, by), bucket in bins.items():
                if bx1 <= bx <= bx2 and by1 <= by <= by2:
                    yield bucket
            return
        for bx in range(bx1, bx2 + 1):
            for by in range(by1, by2 + 1):
                bucket = bins.get((bx, by))
                if bucket is not None:
                    yield bucket

    def query(self, rect: Rect, margin: int = 0, strict: bool = False) -> List[int]:
        x1, y1 = rect.x1 - margin, rect.y1 - margin
        x2, y2 = rect.x2 + margin, rect.y2 + margin
        rects = self.rects
        stamp = self._stamp
        self._epoch += 1
        epoch = self._epoch
        found: List[int] = []
        for bucket in self._buckets_in(x1, y1, x2, y2):
            for index in bucket:
                if stamp[index] == epoch:
                    continue
                stamp[index] = epoch
                r = rects[index]
                if strict:
                    if x1 < r.x2 and r.x1 < x2 and y1 < r.y2 and r.y1 < y2:
                        found.append(index)
                elif x1 <= r.x2 and r.x1 <= x2 and y1 <= r.y2 and r.y1 <= y2:
                    found.append(index)
        found.sort()
        return found

    def neighbors(self, rect: Rect, margin: int) -> List[int]:
        x1, y1 = rect.x1 - margin, rect.y1 - margin
        x2, y2 = rect.x2 + margin, rect.y2 + margin
        rects = self.rects
        stamp = self._stamp
        self._epoch += 1
        epoch = self._epoch
        found: List[int] = []
        for bucket in self._buckets_in(x1, y1, x2, y2):
            for index in bucket:
                if stamp[index] == epoch:
                    continue
                stamp[index] = epoch
                if rect.distance_to(rects[index]) <= margin:
                    found.append(index)
        found.sort()
        return found

    def connected_components(self) -> List[List[int]]:
        return _sweep_components(self.rects)


def build_index(rects: Sequence[Rect], brute_force: bool = False,
                cell_size: Optional[int] = None) -> SpatialIndex:
    """Build the appropriate index for a rectangle list.

    ``brute_force=True`` selects the all-pairs reference implementation
    (used by golden-equivalence tests); tiny lists also fall back to it
    because the grid bookkeeping costs more than it saves.
    """
    if brute_force or len(rects) <= 4:
        return BruteForceIndex(rects)
    return GridIndex(rects, cell_size=cell_size)


# -- connectivity helpers -----------------------------------------------------------


class UnionFind:
    """Union-find with path halving; components come out deterministically.

    Shared by the sweep-line merge here and by the extractor's node builder
    (:mod:`repro.extract.extractor`), so there is exactly one union-find in
    the codebase.
    """

    __slots__ = ("parent",)

    def __init__(self, count: int = 0):
        self.parent = list(range(count))

    def add(self) -> int:
        """Append a fresh singleton element and return its index."""
        index = len(self.parent)
        self.parent.append(index)
        return index

    def find(self, index: int) -> int:
        parent = self.parent
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self.parent[root_a] = root_b

    def components(self) -> List[List[int]]:
        groups: Dict[int, List[int]] = {}
        for index in range(len(self.parent)):
            groups.setdefault(self.find(index), []).append(index)
        # Scanning ids in ascending order inserts each group when its smallest
        # member is reached, so insertion order == order by smallest member.
        return list(groups.values())


def _sweep_components(rects: Sequence[Rect]) -> List[List[int]]:
    """Connected components of touching rectangles via a plane sweep.

    Rectangles enter the active set in order of their left edge and are
    evicted once the sweep passes their right edge; each entering rectangle
    is united with every active rectangle whose y-interval touches its own.
    Expected cost is O(n log n + n * k) for k simultaneously active
    neighbours, against O(n^2) for the all-pairs scan.
    """
    count = len(rects)
    finder = UnionFind(count)
    order = sorted(range(count), key=lambda i: rects[i].x1)
    # Heap of (x2, id) so eviction is O(log n); active maps id -> (y1, y2).
    expiry: List[Tuple[int, int]] = []
    active: Dict[int, Tuple[int, int]] = {}
    for index in order:
        r = rects[index]
        x1 = r.x1
        while expiry and expiry[0][0] < x1:
            _, expired = heapq.heappop(expiry)
            active.pop(expired, None)
        y1, y2 = r.y1, r.y2
        for other, (other_y1, other_y2) in active.items():
            if other_y1 <= y2 and y1 <= other_y2:
                finder.union(index, other)
        active[index] = (y1, y2)
        heapq.heappush(expiry, (r.x2, index))
    return finder.components()


def _pick_cell_size(rects: Sequence[Rect]) -> int:
    """Heuristic grid pitch: about twice the mean rectangle side length.

    Doubling the mean side keeps long thin wires from being registered in an
    excessive number of bins while typical contact/gate-sized rectangles
    still map to a handful of cells.
    """
    if not rects:
        return 1
    total = 0
    for r in rects:
        total += (r.x2 - r.x1) + (r.y2 - r.y1)
    mean_side = total // (2 * len(rects))
    return max(1, mean_side * 2)
