"""repro: a silicon compilation toolchain.

A from-scratch Python reproduction of the system framed by J.P. Gray,
"Introduction to Silicon Compilation" (DAC 1979): an extensible layout
language embedded in Python, parameterised generators for regular structures
(PLAs, ROMs, RAMs, datapaths), a behavioural register-transfer language with
a compiler down to layout, physical verification (DRC, extraction, netlist
comparison), chip assembly, and the Caltech Intermediate Form as the
manufacturing interface.

The public API is re-exported from the subpackages; see the README for a
quickstart and DESIGN.md for the system inventory.
"""

__version__ = "0.1.0"

from repro.diagnostics import (
    Budget,
    BudgetExceeded,
    Diagnostic,
    DiagnosticCollector,
    DiagnosticError,
    Severity,
    SourceSpan,
    configure_logging,
    strict_mode,
)
from repro.geometry import Point, Rect, Polygon, Path, Transform, Orientation
from repro.technology import Technology, nmos_technology, cmos_technology, NMOS, CMOS
from repro.layout import Cell, Library, Port, flatten_cell, cell_statistics
from repro.cif import write_cif, parse_cif, cell_to_cif

__all__ = [
    "__version__",
    "Budget",
    "BudgetExceeded",
    "Diagnostic",
    "DiagnosticCollector",
    "DiagnosticError",
    "Severity",
    "SourceSpan",
    "configure_logging",
    "strict_mode",
    "Point",
    "Rect",
    "Polygon",
    "Path",
    "Transform",
    "Orientation",
    "Technology",
    "nmos_technology",
    "cmos_technology",
    "NMOS",
    "CMOS",
    "Cell",
    "Library",
    "Port",
    "flatten_cell",
    "cell_statistics",
    "write_cif",
    "parse_cif",
    "cell_to_cif",
]
