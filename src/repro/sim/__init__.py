"""Compiled simulation kernel.

Lowers flattened structural netlists to integer-indexed arrays with
precomputed fanout and topologically levelized schedules
(:mod:`repro.sim.kernel`), and evaluates them either scalar-exact
(:class:`ScalarEngine`, the engine behind ``GateLevelSimulator``) or
bit-parallel over packed vector planes (:mod:`repro.sim.bitplane`, the
engine behind functional equivalence checking and stream co-simulation).
"""

from repro.sim.kernel import CompiledNetlist, ScalarEngine, compile_netlist
from repro.sim.bitplane import (
    BitplaneEvaluator,
    evaluate_vectors,
    exhaustive_input_planes,
    run_streams,
)

__all__ = [
    "CompiledNetlist",
    "ScalarEngine",
    "compile_netlist",
    "BitplaneEvaluator",
    "evaluate_vectors",
    "exhaustive_input_planes",
    "run_streams",
]
