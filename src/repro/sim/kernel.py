"""Compiled simulation kernel: netlist lowering and the scalar engine.

The seed's :class:`~repro.netlist.gate_sim.GateLevelSimulator` interpreted
the netlist on every sweep: it rescanned every instance, re-sorted the port
dictionary of every gate, and looked every net up by name.  This module
lowers a flattened :class:`~repro.netlist.module.Module` **once** into
integer-indexed arrays:

* every net gets a dense integer id (plus one phantom slot that is
  permanently X, standing in for unconnected optional ports);
* every combinational gate becomes an opcode, a tuple of input net ids
  (data inputs in numeric port order) and an output net id;
* per-net fanout lists say exactly which gates must be re-evaluated when a
  net changes, so settling is event-driven instead of scan-everything;
* the combinational gates are topologically levelized (Kahn's algorithm),
  which gives the single-pass schedule used by the bit-parallel evaluator
  (:mod:`repro.sim.bitplane`) and an O(gates) critical-path computation.

The :class:`ScalarEngine` replicates the reference interpreter's settle
semantics *exactly* — same sweep structure, same instance order, same
``last_depth`` accounting, same oscillation limit — which is what lets the
differential suite pin trace-identical results.  The speed comes from the
lowering: each sweep after the first touches only the gates downstream of
nets that actually changed, and each gate evaluation is a pre-built closure
over list indices instead of a dictionary walk.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.diagnostics import BudgetExceeded, Diagnostic, Severity
from repro.netlist.module import GateType, Module
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

# Opcodes for the lowered gate records.
OP_AND = 0
OP_OR = 1
OP_NAND = 2
OP_NOR = 3
OP_XOR = 4
OP_XNOR = 5
OP_NOT = 6
OP_BUF = 7
OP_MUX2 = 8
OP_LATCH = 9
OP_CONST0 = 10
OP_CONST1 = 11

_OPCODE_OF: Dict[GateType, int] = {
    GateType.AND: OP_AND,
    GateType.OR: OP_OR,
    GateType.NAND: OP_NAND,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
    GateType.NOT: OP_NOT,
    GateType.BUF: OP_BUF,
    GateType.MUX2: OP_MUX2,
    GateType.LATCH: OP_LATCH,
    GateType.CONST0: OP_CONST0,
    GateType.CONST1: OP_CONST1,
}


class CompiledNetlist:
    """A flattened module lowered to integer-indexed net and gate arrays."""

    def __init__(self, module: Module):
        flat = module
        if any(not instance.is_primitive for instance in flat.instances):
            flat = module.flattened()
        self.module = flat

        self.net_names: List[str] = list(flat.nets)
        self.net_index: Dict[str, int] = {
            name: index for index, name in enumerate(self.net_names)
        }
        #: Phantom net id whose value is permanently X (unconnected ports).
        self.x_slot: int = len(self.net_names)
        self.num_slots: int = self.x_slot + 1

        self.gate_ops: List[int] = []
        self.gate_ins: List[Tuple[int, ...]] = []
        self.gate_outs: List[int] = []
        self.gate_names: List[str] = []
        #: (instance name, d net id, q net id) per DFF, in instance order.
        self.dffs: List[Tuple[str, int, int]] = []
        self.total_instances = len(flat.instances)

        index = self.net_index
        x_slot = self.x_slot
        for instance in flat.instances:
            output = instance.connections.get("out")
            if output is None:
                continue
            kind = instance.kind
            if kind is GateType.DFF:
                d_net = instance.connections.get("in0")
                d_id = index[d_net] if d_net is not None else x_slot
                self.dffs.append((instance.name, d_id, index[output]))
                continue
            if kind is GateType.MUX2:
                ins = tuple(
                    index.get(instance.connections.get(port, ""), x_slot)
                    for port in ("sel", "a", "b")
                )
            elif kind is GateType.LATCH:
                ins = (
                    index.get(instance.connections.get("in0", ""), x_slot),
                    index.get(instance.connections.get("enable", ""), x_slot),
                )
            else:
                ins = tuple(index[net] for net in instance.data_input_nets())
            self.gate_ops.append(_OPCODE_OF[kind])
            self.gate_ins.append(ins)
            self.gate_outs.append(index[output])
            self.gate_names.append(instance.name)

        self.num_gates = len(self.gate_ops)

        # Event fanout: net id -> sorted tuple of gate ids to re-evaluate.
        # Gate ids follow instance order, so sorting candidate ids reproduces
        # the reference interpreter's instance-order sweeps.
        fanout_sets: List[Set[int]] = [set() for _ in range(self.num_slots)]
        for gate_id, ins in enumerate(self.gate_ins):
            for net_id in ins:
                if net_id != x_slot:
                    fanout_sets[net_id].add(gate_id)
        self.fanout: List[Tuple[int, ...]] = [
            tuple(sorted(s)) for s in fanout_sets
        ]

        self.input_ids: List[int] = [index[n] for n in flat.input_names()]
        self.output_ids: List[int] = [index[n] for n in flat.output_names()]

        self.levels: Optional[List[List[int]]] = self._levelize()

    # -- levelization ---------------------------------------------------------------

    def _levelize(self) -> Optional[List[List[int]]]:
        """Kahn levelization of the combinational gates; None when cyclic."""
        producer: Dict[int, int] = {}
        for gate_id, out in enumerate(self.gate_outs):
            producer[out] = gate_id

        dependents: List[List[int]] = [[] for _ in range(self.num_gates)]
        indegree = [0] * self.num_gates
        for gate_id, ins in enumerate(self.gate_ins):
            for net_id in set(ins):
                source = producer.get(net_id)
                if source is None:
                    continue
                if source == gate_id:
                    # Output feeding its own input: a one-gate cycle.  Give
                    # it an indegree that never drains so Kahn leaves it
                    # unplaced and the netlist is classified cyclic.
                    indegree[gate_id] += 1
                    continue
                dependents[source].append(gate_id)
                indegree[gate_id] += 1

        levels: List[List[int]] = []
        frontier = [g for g in range(self.num_gates) if indegree[g] == 0]
        placed = 0
        while frontier:
            levels.append(frontier)
            placed += len(frontier)
            nxt: List[int] = []
            for gate_id in frontier:
                for dependent in dependents[gate_id]:
                    indegree[dependent] -= 1
                    if indegree[dependent] == 0:
                        nxt.append(dependent)
            frontier = nxt
        if placed != self.num_gates:
            return None   # combinational cycle (e.g. cross-coupled gates)
        return levels

    @property
    def is_cyclic(self) -> bool:
        return self.levels is None

    # -- critical path ----------------------------------------------------------------

    def critical_path_estimate(self) -> int:
        """Longest combinational depth, matching the reference interpreter.

        For acyclic netlists this is a single pass over the levelized
        schedule; for cyclic ones it falls back to an exact integer-indexed
        replica of the interpreter's bounded relaxation (same instance
        order, same iteration cap) so the result is identical either way.
        """
        if self.levels is None:
            return self._relaxation_critical_path()
        net_depth = [0] * self.num_slots
        ops = self.gate_ops
        gate_ins = self.gate_ins
        outs = self.gate_outs
        best = 0
        for level in self.levels:
            for gate_id in level:
                if ops[gate_id] == OP_LATCH:
                    continue   # sequential: a depth source, not a stage
                depth = 0
                for net_id in gate_ins[gate_id]:
                    if net_depth[net_id] > depth:
                        depth = net_depth[net_id]
                depth += 1
                out = outs[gate_id]
                if depth > net_depth[out]:
                    net_depth[out] = depth
                if depth > best:
                    best = depth
        return best

    def _relaxation_critical_path(self) -> int:
        net_depth = [0] * self.num_slots
        ops = self.gate_ops
        gate_ins = self.gate_ins
        outs = self.gate_outs
        best = 0
        changed = True
        iterations = 0
        while changed:
            iterations += 1
            if iterations > self.total_instances + 2:
                break
            changed = False
            for gate_id in range(self.num_gates):
                if ops[gate_id] == OP_LATCH:
                    continue
                depth = 0
                for net_id in gate_ins[gate_id]:
                    if net_depth[net_id] > depth:
                        depth = net_depth[net_id]
                depth += 1
                out = outs[gate_id]
                if depth > net_depth[out]:
                    net_depth[out] = depth
                    if depth > best:
                        best = depth
                    changed = True
        return best


# Lowered netlists keyed by content digest (repro.store.hashing): lowering
# is a pure function of the module's structure, and a CompiledNetlist is
# immutable after construction (engines keep their own value arrays), so
# one compilation serves every simulator, STA run and comparison that sees
# structurally identical input.  Unbudgeted on purpose: entries are small
# relative to the modules they are compiled from, and the budget's pickle
# measurement would cost more than it protects.
_COMPILE_CACHE = None


def compile_netlist(module: Module) -> CompiledNetlist:
    """The lowered form of ``module``, cached by netlist content hash.

    Returns a shared :class:`CompiledNetlist` instance; callers must treat
    it as immutable (every engine already does — mutable simulation state
    lives in the engines, never in the lowered arrays).
    """
    global _COMPILE_CACHE
    from repro.store.artifact import MemoryStore
    from repro.store.hashing import netlist_hash

    if _COMPILE_CACHE is None:
        _COMPILE_CACHE = MemoryStore(budget_bytes=None)
    key = "compiled:" + netlist_hash(module)
    compiled = _COMPILE_CACHE.get(key)
    if compiled is None:
        obs_metrics.counter("sim.compile.misses").inc()
        with obs_trace.span("sim.compile", cat="sim", module=module.name,
                            gates=len(module.instances)):
            compiled = CompiledNetlist(module)
        _COMPILE_CACHE.put(key, compiled)
    else:
        obs_metrics.counter("sim.compile.hits").inc()
    return compiled


class ScalarEngine:
    """Event-driven scalar settle on a :class:`CompiledNetlist`.

    Reproduces the reference interpreter's Gauss-Seidel sweep semantics
    bit-for-bit (values, ``last_depth``, oscillation limit): the first
    sweep evaluates every combinational gate in instance order with
    immediate updates — exactly what the interpreter's ``changed_nets =
    all nets`` first iteration does — and every later sweep touches only
    the fanout of nets that changed in the sweep before.

    ``values_dict``/``state_dict`` are the simulator-facing name-keyed
    views; the engine keeps them in sync so external readers see the same
    dictionaries the interpreter maintains.
    """

    def __init__(self, compiled: CompiledNetlist,
                 values_dict: Dict[str, Optional[int]],
                 state_dict: Dict[str, Optional[int]],
                 settle_limit: int = 10000,
                 settle_seconds: Optional[float] = None):
        self.compiled = compiled
        self.values = values_dict
        self.state = state_dict
        self.settle_limit = settle_limit
        #: Optional wall-clock budget per settle call, on top of the
        #: iteration limit (guards adversarial netlists whose sweeps are
        #: individually huge).
        self.settle_seconds = settle_seconds
        self.vals: List[Optional[int]] = [None] * compiled.num_slots
        for name, net_id in compiled.net_index.items():
            self.vals[net_id] = values_dict.get(name)
        self._all_gates: List[int] = list(range(compiled.num_gates))
        self._evals: List[Callable[[], Optional[int]]] = [
            self._make_eval(g) for g in self._all_gates
        ]
        self._settle_calls = obs_metrics.counter("sim.settle.calls")
        self._settle_iterations = obs_metrics.counter("sim.settle.iterations")

    # -- gate closures ---------------------------------------------------------------

    def _make_eval(self, gate_id: int) -> Callable[[], Optional[int]]:
        vals = self.vals
        op = self.compiled.gate_ops[gate_id]
        ins = self.compiled.gate_ins[gate_id]

        if op == OP_AND or op == OP_NAND:
            hit, miss = (0, 1) if op == OP_AND else (1, 0)

            def f_and() -> Optional[int]:
                result = miss
                for i in ins:
                    v = vals[i]
                    if v == 0:
                        return hit
                    if v is None:
                        result = None
                return result
            return f_and
        if op == OP_OR or op == OP_NOR:
            hit, miss = (1, 0) if op == OP_OR else (0, 1)

            def f_or() -> Optional[int]:
                result = miss
                for i in ins:
                    v = vals[i]
                    if v == 1:
                        return hit
                    if v is None:
                        result = None
                return result
            return f_or
        if op == OP_XOR or op == OP_XNOR:
            flip = 0 if op == OP_XOR else 1

            def f_xor() -> Optional[int]:
                parity = flip
                for i in ins:
                    v = vals[i]
                    if v is None:
                        return None
                    parity ^= v
                return parity
            return f_xor
        if op == OP_NOT:
            source = ins[0]

            def f_not() -> Optional[int]:
                v = vals[source]
                return None if v is None else 1 - v
            return f_not
        if op == OP_BUF:
            source = ins[0]
            return lambda: vals[source]
        if op == OP_MUX2:
            sel_i, a_i, b_i = ins

            def f_mux() -> Optional[int]:
                sel = vals[sel_i]
                if sel is None:
                    a = vals[a_i]
                    return a if a == vals[b_i] else None
                return vals[b_i] if sel else vals[a_i]
            return f_mux
        if op == OP_LATCH:
            d_i, en_i = ins
            state = self.state
            name = self.compiled.gate_names[gate_id]

            def f_latch() -> Optional[int]:
                if vals[en_i] == 1:
                    v = vals[d_i]
                    state[name] = v
                    return v
                return state.get(name)
            return f_latch
        if op == OP_CONST0:
            return lambda: 0
        if op == OP_CONST1:
            return lambda: 1
        raise AssertionError(f"unhandled opcode {op}")

    # -- operations --------------------------------------------------------------------

    def set_value(self, net_id: int, value: Optional[int]) -> None:
        self.vals[net_id] = value
        self.values[self.compiled.net_names[net_id]] = value

    def settle(self) -> int:
        """Propagate to a fixed point; returns the sweep depth."""
        vals = self.vals
        outs = self.compiled.gate_outs
        evals = self._evals
        fanout = self.compiled.fanout
        limit = self.settle_limit
        deadline = (None if self.settle_seconds is None
                    else time.monotonic() + self.settle_seconds)
        depth = 0
        iterations = 0
        dirty: Set[int] = set()
        candidates: Sequence[int] = self._all_gates
        while True:
            iterations += 1
            if iterations > limit:
                raise BudgetExceeded(
                    "combinational loop did not settle (oscillation?)",
                    Diagnostic(Severity.ERROR, "GRD002",
                               "combinational loop did not settle "
                               "(oscillation?)",
                               hint="the netlist oscillates; raise "
                                    "settle_limit only if depth is real",
                               source="sim"))
            if (deadline is not None and iterations % 64 == 0
                    and time.monotonic() > deadline):
                raise BudgetExceeded(
                    f"settle exceeded {self.settle_seconds}s time budget",
                    Diagnostic(Severity.ERROR, "GRD002",
                               f"settle exceeded {self.settle_seconds}s "
                               "time budget", source="sim"))
            changed: List[int] = []
            for gate_id in candidates:
                new_value = evals[gate_id]()
                out = outs[gate_id]
                if new_value != vals[out]:
                    vals[out] = new_value
                    changed.append(out)
            if not changed:
                break
            depth += 1
            dirty.update(changed)
            affected: Set[int] = set()
            for out in changed:
                affected.update(fanout[out])
            candidates = sorted(affected)
        values = self.values
        names = self.compiled.net_names
        for net_id in dirty:
            values[names[net_id]] = vals[net_id]
        self._settle_calls.inc()
        self._settle_iterations.inc(iterations)
        return depth

    def clock(self) -> None:
        """One clock edge: capture all DFF D inputs, then update together."""
        vals = self.vals
        captured = [(name, q_id, vals[d_id])
                    for name, d_id, q_id in self.compiled.dffs]
        state = self.state
        values = self.values
        names = self.compiled.net_names
        for name, q_id, value in captured:
            state[name] = value
            vals[q_id] = value
            values[names[q_id]] = value

    def reset(self, value: int) -> None:
        vals = self.vals
        state = self.state
        values = self.values
        names = self.compiled.net_names
        for name, _d_id, q_id in self.compiled.dffs:
            state[name] = value
            vals[q_id] = value
            values[names[q_id]] = value
