"""Bit-parallel three-valued evaluation over levelized schedules.

W independent input vectors are packed into Python-int *bitplanes*: every
net carries two arbitrary-precision integers, ``hi`` (bit w set — vector w
sees a definite 1) and ``lo`` (definite 0); a bit set in neither plane is X.
One pass through the :class:`~repro.sim.kernel.CompiledNetlist`'s levelized
schedule then evaluates all W vectors at once — an AND gate is one ``&``
and one ``|`` regardless of W, so the per-vector cost of a gate drops by
roughly the machine word width.

Python ints being unbounded, W is limited only by memory: an exhaustive
check of a 14-input cone packs all 16384 patterns into a single pass.

Uses:

* :class:`BitplaneEvaluator` — the plane-level engine; the combinational
  side of ``compare_netlists(..., functional=True)`` drives it directly;
* :func:`evaluate_vectors` — convenience combinational batch evaluation
  over per-vector input dicts;
* :func:`run_streams` — clocked co-simulation of W independent stimulus
  streams, trace-compatible with ``GateLevelSimulator.run`` per stream
  (the sequential side of the functional equivalence check);
* :func:`exhaustive_input_planes` — the standard variable-ordering planes
  for exhaustive equivalence sweeps.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import trace as obs_trace
from repro.sim.kernel import (
    CompiledNetlist,
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_LATCH,
    OP_MUX2,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)


class BitplaneEvaluator:
    """Evaluate a compiled netlist on W packed vectors at once."""

    def __init__(self, compiled: CompiledNetlist, width: int,
                 settle_limit: int = 10000):
        if width <= 0:
            raise ValueError("vector width must be positive")
        self.compiled = compiled
        self.width = width
        self.mask = (1 << width) - 1
        self.settle_limit = settle_limit
        # All-X initial planes, matching the scalar simulators.
        self.hi: List[int] = [0] * compiled.num_slots
        self.lo: List[int] = [0] * compiled.num_slots
        self._latch_hi: Dict[int, int] = {}
        self._latch_lo: Dict[int, int] = {}
        self._evals: List[Callable[[], None]] = [
            self._make_eval(g) for g in range(compiled.num_gates)
        ]
        if compiled.levels is not None:
            self._schedule: List[int] = [
                g for level in compiled.levels for g in level
            ]
        else:
            self._schedule = list(range(compiled.num_gates))

    # -- gate closures ---------------------------------------------------------------

    def _make_eval(self, gate_id: int) -> Callable[[], None]:
        hi = self.hi
        lo = self.lo
        mask = self.mask
        op = self.compiled.gate_ops[gate_id]
        ins = self.compiled.gate_ins[gate_id]
        out = self.compiled.gate_outs[gate_id]

        if op in (OP_AND, OP_NAND):
            invert = op == OP_NAND

            def f_and() -> None:
                h = mask
                l = 0
                for i in ins:
                    h &= hi[i]
                    l |= lo[i]
                if invert:
                    hi[out], lo[out] = l, h
                else:
                    hi[out], lo[out] = h, l
            return f_and
        if op in (OP_OR, OP_NOR):
            invert = op == OP_NOR

            def f_or() -> None:
                h = 0
                l = mask
                for i in ins:
                    h |= hi[i]
                    l &= lo[i]
                if invert:
                    hi[out], lo[out] = l, h
                else:
                    hi[out], lo[out] = h, l
            return f_or
        if op in (OP_XOR, OP_XNOR):
            invert = op == OP_XNOR

            def f_xor() -> None:
                known = mask
                parity = 0
                for i in ins:
                    known &= hi[i] | lo[i]
                    parity ^= hi[i]
                if invert:
                    parity ^= mask
                hi[out] = known & parity
                lo[out] = known & (parity ^ mask)
            return f_xor
        if op == OP_NOT:
            source = ins[0]

            def f_not() -> None:
                hi[out] = lo[source]
                lo[out] = hi[source]
            return f_not
        if op == OP_BUF:
            source = ins[0]

            def f_buf() -> None:
                hi[out] = hi[source]
                lo[out] = lo[source]
            return f_buf
        if op == OP_MUX2:
            sel_i, a_i, b_i = ins

            def f_mux() -> None:
                sel_hi = hi[sel_i]
                sel_lo = lo[sel_i]
                sel_x = mask ^ (sel_hi | sel_lo)
                a_hi, a_lo = hi[a_i], lo[a_i]
                b_hi, b_lo = hi[b_i], lo[b_i]
                hi[out] = (sel_hi & b_hi) | (sel_lo & a_hi) | (sel_x & a_hi & b_hi)
                lo[out] = (sel_hi & b_lo) | (sel_lo & a_lo) | (sel_x & a_lo & b_lo)
            return f_mux
        if op == OP_LATCH:
            d_i, en_i = ins
            latch_hi = self._latch_hi
            latch_lo = self._latch_lo
            latch_hi[gate_id] = 0
            latch_lo[gate_id] = 0

            def f_latch() -> None:
                enabled = hi[en_i]
                hold = mask ^ enabled
                new_hi = (enabled & hi[d_i]) | (hold & latch_hi[gate_id])
                new_lo = (enabled & lo[d_i]) | (hold & latch_lo[gate_id])
                latch_hi[gate_id] = new_hi
                latch_lo[gate_id] = new_lo
                hi[out] = new_hi
                lo[out] = new_lo
            return f_latch
        if op == OP_CONST0:

            def f_const0() -> None:
                hi[out] = 0
                lo[out] = mask
            return f_const0
        if op == OP_CONST1:

            def f_const1() -> None:
                hi[out] = mask
                lo[out] = 0
            return f_const1
        raise AssertionError(f"unhandled opcode {op}")

    # -- plane access -----------------------------------------------------------------

    def set_input_planes(self, name: str, hi_plane: int, lo_plane: int) -> None:
        net_id = self.compiled.net_index[name]
        self.hi[net_id] = hi_plane & self.mask
        self.lo[net_id] = lo_plane & self.mask

    def set_input_vector(self, name: str, values: Sequence[Optional[int]]) -> None:
        hi_plane = 0
        lo_plane = 0
        for w, value in enumerate(values):
            if value is None:
                continue
            if value:
                hi_plane |= 1 << w
            else:
                lo_plane |= 1 << w
        self.set_input_planes(name, hi_plane, lo_plane)

    def get_planes(self, name: str) -> Tuple[int, int]:
        net_id = self.compiled.net_index[name]
        return self.hi[net_id], self.lo[net_id]

    def get_vector(self, name: str) -> List[Optional[int]]:
        hi_plane, lo_plane = self.get_planes(name)
        return [
            1 if (hi_plane >> w) & 1 else (0 if (lo_plane >> w) & 1 else None)
            for w in range(self.width)
        ]

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self) -> None:
        """One pass over the levelized schedule (fixpoint for acyclic nets).

        Cyclic netlists fall back to Gauss-Seidel sweeps in instance order
        until the planes stop changing, bounded by ``settle_limit``.
        """
        evals = self._evals
        if self.compiled.levels is not None:
            for gate_id in self._schedule:
                evals[gate_id]()
            return
        hi = self.hi
        lo = self.lo
        outs = self.compiled.gate_outs
        for _ in range(self.settle_limit):
            changed = False
            for gate_id in self._schedule:
                out = outs[gate_id]
                before = (hi[out], lo[out])
                evals[gate_id]()
                if (hi[out], lo[out]) != before:
                    changed = True
            if not changed:
                return
        raise RuntimeError("combinational loop did not settle (oscillation?)")

    def clock(self) -> None:
        """Capture all DFF D planes, then update the Q planes together."""
        hi = self.hi
        lo = self.lo
        captured = [(q_id, hi[d_id], lo[d_id])
                    for _name, d_id, q_id in self.compiled.dffs]
        for q_id, d_hi, d_lo in captured:
            hi[q_id] = d_hi
            lo[q_id] = d_lo

    def reset(self, value: int = 0) -> None:
        """Force all DFF outputs to a known value across every vector."""
        q_hi = self.mask if value else 0
        q_lo = 0 if value else self.mask
        for _name, _d_id, q_id in self.compiled.dffs:
            self.hi[q_id] = q_hi
            self.lo[q_id] = q_lo


def exhaustive_input_planes(num_inputs: int) -> List[Tuple[int, int]]:
    """(hi, lo) planes enumerating all ``2**num_inputs`` patterns.

    Input ``i`` toggles with period ``2**(i+1)`` — the standard truth-table
    variable ordering, so vector index w applies the pattern ``w``.
    """
    width = 1 << num_inputs
    mask = (1 << width) - 1
    planes: List[Tuple[int, int]] = []
    for i in range(num_inputs):
        half = 1 << i
        block = (1 << half) - 1
        hi_plane = 0
        for start in range(half, width, half * 2):
            hi_plane |= block << start
        planes.append((hi_plane, mask ^ hi_plane))
    return planes


def evaluate_vectors(compiled: CompiledNetlist,
                     input_vectors: Sequence[Dict[str, Optional[int]]],
                     outputs: Optional[Sequence[str]] = None,
                     ) -> List[Dict[str, Optional[int]]]:
    """Combinational batch evaluation: one levelized pass for all vectors."""
    width = len(input_vectors)
    if width == 0:
        return []
    evaluator = BitplaneEvaluator(compiled, width)
    names = {name for vector in input_vectors for name in vector}
    for name in names:
        evaluator.set_input_vector(
            name, [vector.get(name) for vector in input_vectors]
        )
    evaluator.evaluate()
    if outputs is not None:
        watch = list(outputs)
    else:
        watch = [compiled.net_names[i] for i in compiled.output_ids]
    columns = {name: evaluator.get_vector(name) for name in watch}
    return [{name: columns[name][w] for name in watch} for w in range(width)]


#: Below this many streams ``run_streams`` stays serial: each extra batch
#: pays the per-evaluate interpreter overhead again, so thin workloads are
#: not worth the pool.
DEFAULT_MIN_PARALLEL_WIDTH = 128


def _stream_worker(payload, task):
    """Simulate one contiguous slice of the stimulus streams."""
    start, stop = task
    with obs_trace.span("sim.streams_slice", cat="sim",
                        start=start, stop=stop):
        return _simulate_streams(payload["compiled"],
                                 payload["stimulus"][start:stop],
                                 payload["watch"], payload["reset_value"])


def run_streams(compiled: CompiledNetlist,
                stimulus: Sequence[Sequence[Dict[str, Optional[int]]]],
                record: Optional[Sequence[str]] = None,
                reset_value: Optional[int] = 0,
                use_parallel: bool = True,
                min_parallel_width: int = DEFAULT_MIN_PARALLEL_WIDTH,
                ) -> List[List[Dict[str, Optional[int]]]]:
    """Clocked co-simulation of W independent stimulus streams.

    ``stimulus[w][c]`` is stream w's input vector for cycle c (all streams
    must supply the same number of cycles).  The returned trace for each
    stream matches ``GateLevelSimulator.run`` on the same netlist after a
    ``reset(reset_value)`` — one recorded dict per cycle, sampled after the
    combinational settle and before the clock edge; as with ``set_inputs``,
    an input omitted from a cycle's vector holds its previous value while
    an explicit ``None`` drives X.

    Streams are mutually independent, so with ``use_parallel=True`` (the
    default) and 2+ configured workers (``REPRO_WORKERS``) a workload of at
    least ``min_parallel_width`` streams is split into one contiguous
    stream group per worker; each group simulates exactly as a standalone
    ``run_streams`` call would, and the traces concatenate back in input
    order, so the result is identical to the serial run.
    """
    width = len(stimulus)
    if width == 0:
        return []
    cycle_counts = {len(stream) for stream in stimulus}
    if len(cycle_counts) != 1:
        raise ValueError("all stimulus streams must have the same length")
    with obs_trace.span("sim.run_streams", cat="sim", streams=width,
                        cycles=next(iter(cycle_counts))):
        return _run_streams(compiled, stimulus, record, reset_value,
                            use_parallel, min_parallel_width, width)


def _run_streams(compiled, stimulus, record, reset_value, use_parallel,
                 min_parallel_width, width):
    """``run_streams`` body (inputs length-checked by the wrapper)."""

    input_names = [compiled.net_names[i] for i in compiled.input_ids]
    known_inputs = set(input_names)
    for stream in stimulus:
        for vector in stream:
            for name in vector:
                if name not in known_inputs:
                    # set_inputs parity: a typo must error, not produce a
                    # plausible trace (streams drive primary inputs only).
                    raise KeyError(f"unknown input net {name!r}")

    if record is not None:
        watch = list(record)
    else:
        watch = compiled.module.input_names() + compiled.module.output_names()

    if use_parallel:
        from repro import parallel

        workers = parallel.worker_count()
        if (workers >= 2 and not parallel.in_worker()
                and width >= min_parallel_width):
            # Inputs are validated above, so worker-side errors are real
            # faults, not stimulus typos surfacing remotely.
            payload = {"compiled": compiled, "stimulus": list(stimulus),
                       "watch": watch, "reset_value": reset_value}
            bounds = [width * k // workers for k in range(workers + 1)]
            tasks = [(bounds[k], bounds[k + 1]) for k in range(workers)
                     if bounds[k] < bounds[k + 1]]
            with parallel.SharedPool("batched bitplane simulation",
                                     _stream_worker, payload,
                                     workers=workers) as pool:
                groups = pool.map(tasks)
            traces: List[List[Dict[str, Optional[int]]]] = []
            for group in groups:
                traces.extend(group)
            return traces

    return _simulate_streams(compiled, stimulus, watch, reset_value)


def _simulate_streams(compiled: CompiledNetlist,
                      stimulus: Sequence[Sequence[Dict[str, Optional[int]]]],
                      watch: Sequence[str],
                      reset_value: Optional[int],
                      ) -> List[List[Dict[str, Optional[int]]]]:
    """The plane-level stream loop (inputs already validated)."""
    width = len(stimulus)
    if width == 0:
        return []
    cycles = len(stimulus[0])
    input_names = [compiled.net_names[i] for i in compiled.input_ids]

    evaluator = BitplaneEvaluator(compiled, width)
    if reset_value is not None:
        evaluator.reset(reset_value)
        evaluator.evaluate()

    traces: List[List[Dict[str, Optional[int]]]] = [[] for _ in range(width)]
    for cycle in range(cycles):
        for name in input_names:
            # Mirror set_inputs semantics per stream: a named value drives
            # the net (None drives X), an *omitted* name holds its previous
            # value.
            new_hi = 0
            new_lo = 0
            keep = 0
            for w in range(width):
                vector = stimulus[w][cycle]
                if name in vector:
                    value = vector[name]
                    if value is not None:
                        if value:
                            new_hi |= 1 << w
                        else:
                            new_lo |= 1 << w
                else:
                    keep |= 1 << w
            old_hi, old_lo = evaluator.get_planes(name)
            evaluator.set_input_planes(name, (old_hi & keep) | new_hi,
                                       (old_lo & keep) | new_lo)
        evaluator.evaluate()
        columns = {name: evaluator.get_vector(name) for name in watch}
        for w in range(width):
            traces[w].append({name: columns[name][w] for name in watch})
        evaluator.clock()
        evaluator.evaluate()
    return traces
