"""Hierarchical incremental analysis.

The flat analysis passes (:mod:`repro.drc`, :mod:`repro.extract`,
:mod:`repro.metrics`) re-examine every rectangle of every instance on every
run.  This package exploits the hierarchy instead: each unique cell is
analyzed once per mutation version (and per placement orientation), the
results are cached, and whole-chip answers are composed from the cached
per-cell artifacts plus a thin interface pass around instance boundaries.
The composed results are byte-identical to the flat reference paths — the
differential suite in ``tests/test_hier_golden.py`` pins this.
"""

from repro.analysis.hier import (
    HierAnalyzer,
    hier_check_cell,
    hier_extract_cell,
    hier_measure_cell,
)

__all__ = [
    "HierAnalyzer",
    "hier_check_cell",
    "hier_extract_cell",
    "hier_measure_cell",
]
