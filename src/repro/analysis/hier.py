"""Hierarchical incremental DRC / extraction / metrics.

The flat engines (:class:`repro.drc.checker.DrcChecker`,
:class:`repro.extract.extractor.Extractor`) flatten the whole hierarchy and
examine every rectangle of every instance.  This module analyzes each
*unique* cell once and composes whole-chip results from the cached per-cell
artifacts, so repeated instances cost id bookkeeping instead of geometry
work.  The composed output is **byte-identical** to the flat reference —
violation objects, netlist node names, transistor order, metrics — which the
differential suite in ``tests/test_hier_golden.py`` pins against the
``use_index=False`` brute-force path.

Three ideas make exact composition possible:

1.  **Orientation-keyed artifacts.**  Artifacts are cached per
    ``(cell, mutation_version, orientation)`` and built in the instance's
    *oriented frame* (the cell's flat geometry transformed by the placement
    orientation about the origin).  Composition into the parent is then a
    pure translation — and translation commutes with every geometric
    operation the engines perform, including order-sensitive ones like
    :meth:`Rect.subtract` piece enumeration and path-to-rectangle
    decomposition of odd-width wires, which do *not* commute with mirrors
    and rotations.

2.  **Offset id maps.**  A parent's flat rectangle list per layer is the
    concatenation of its own geometry and each instance's oriented list,
    in order.  Child element ids therefore map to parent ids by block
    offsets, and cached per-element verdicts (violations, channel
    crossings, contact hits, ...) are replayed by translating their
    locations and re-basing their ids.

3.  **Halo interface pass.**  A cached verdict is only invalid if foreign
    geometry enters the element's interaction halo (the rule's reach).
    Elements near another source's geometry are conservatively marked
    *suspect* and recomputed in the parent's context with spatial-index
    queries against every source; over-marking a suspect costs time, never
    correctness, because recomputation always yields the flat answer.

Artifacts live in a content-addressed store (:mod:`repro.store`): keys are
derived from the cell subtree's Merkle content digest plus the orientation,
the technology digest and the composition threshold — never from object
identity — so identical subtrees share artifacts across distinct ``Cell``
objects, across designs, and (with a ``REPRO_STORE`` directory configured)
across *processes*.  Invalidation is automatic and exact: editing any cell
at any depth changes its digest and the digest of every ancestor
(:meth:`repro.layout.cell.Cell._mutated` bumps the transitive mutation
counter that gates the digest memo), so exactly the artifacts that depend
on the edit are rebuilt and every other key keeps hitting.
"""

from __future__ import annotations

import weakref
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.erc.checker import ErcChecker, ErcReport
from repro.drc.checker import (
    DrcViolation,
    enclosure_violation,
    exact_size_violation,
    spacing_violation,
    width_violation,
)
from repro.extract.extractor import (
    ExtractedCircuit,
    apply_label,
    dedupe_nodes,
    emit_transistor,
    resolve_node_names,
    split_by_channels,
)
from repro.geometry.index import SpatialIndex, UnionFind, build_index
from repro.geometry.point import Point
from repro.geometry.rect import Rect, merged_area
from repro.geometry.path import Path
from repro.geometry.transform import Orientation, Transform
from repro.layout.cell import Cell
from repro.layout.shapes import Label
from repro.layout.stats import CellStatistics, hierarchy_depth
from repro.metrics.report import DesignMetrics, metrics_from_stats
from repro.netlist.switch_sim import SwitchNetwork
from repro.obs import trace as obs_trace
from repro.store.artifact import ArtifactStore, default_store
from repro.store.hashing import cell_digest, technology_hash
from repro.technology.rules import RuleKind
from repro.technology.technology import Technology
from repro.timing.parasitics import ParasiticModel, annotate_parasitics
from repro.timing.switch import BlockTiming, SwitchTimingAnalyzer

_ORIGIN = Point(0, 0)


# -- oriented flat views ------------------------------------------------------


class _View:
    """Flat geometry of one cell in one orientation's frame.

    ``rects[layer]`` lists every rectangle of the fully flattened cell,
    transformed by the orientation about the origin, in exactly the order
    the flat path's ``FlatLayout.rects_by_layer`` would produce after the
    same transform: the cell's own shapes first, then each instance's block.
    ``offsets[layer]`` gives the per-source block starts (source 0 is the
    cell's own geometry, source ``k`` is instance ``k``); ``sources`` holds
    the child views and their translations inside this frame.
    """

    __slots__ = ("name", "rects", "offsets", "labels", "label_offsets",
                 "sources", "bbox", "shape_count", "path_length", "_indexes",
                 "_layer_bboxes")

    def __init__(self, name: str):
        self.name = name
        self.rects: Dict[str, List[Rect]] = {}
        self.offsets: Dict[str, List[int]] = {}
        self.labels: List[Label] = []
        self.label_offsets: List[int] = [0]
        self.sources: List["_Source"] = []
        self.bbox: Optional[Rect] = None
        self.shape_count = 0
        self.path_length = 0
        self._indexes: Dict[str, SpatialIndex] = {}
        self._layer_bboxes: Dict[str, Optional[Rect]] = {}

    def layer(self, layer: str) -> List[Rect]:
        return self.rects.get(layer, [])

    def index(self, layer: str) -> SpatialIndex:
        index = self._indexes.get(layer)
        if index is None:
            index = build_index(self.layer(layer))
            self._indexes[layer] = index
        return index

    def layer_bbox(self, layer: str) -> Optional[Rect]:
        if layer not in self._layer_bboxes:
            box: Optional[Rect] = None
            for rect in self.layer(layer):
                box = rect if box is None else box.union(rect)
            self._layer_bboxes[layer] = box
        return self._layer_bboxes[layer]

    # Views cross process boundaries in the parallel per-cell fan-out; the
    # lazily built spatial indexes are cheap to rebuild and stay behind.
    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__
                if slot not in ("_indexes", "_layer_bboxes")}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._indexes = {}
        self._layer_bboxes = {}


class _Source:
    """One geometry source of a view: the cell's own shapes or an instance."""

    __slots__ = ("view", "dx", "dy", "cell", "orientation")

    def __init__(self, view: _View, dx: int, dy: int,
                 cell: Optional[Cell], orientation: Optional[Orientation]):
        self.view = view
        self.dx = dx
        self.dy = dy
        self.cell = cell                 # None for the own-geometry source
        self.orientation = orientation

    def probe(self, layer: str, region: Rect, margin: int = 0,
              strict: bool = False) -> Sequence[int]:
        """Query this source's layer index with a parent-frame region."""
        if self.dx or self.dy:
            region = region.translated(-self.dx, -self.dy)
        return self.view.index(layer).query(region, margin=margin, strict=strict)

    def bbox(self) -> Optional[Rect]:
        box = self.view.bbox
        if box is None:
            return None
        return box.translated(self.dx, self.dy) if (self.dx or self.dy) else box

    def global_rect(self, layer: str, local_id: int) -> Rect:
        rect = self.view.layer(layer)[local_id]
        return rect.translated(self.dx, self.dy) if (self.dx or self.dy) else rect


def _translated(rects: Sequence[Rect], dx: int, dy: int) -> List[Rect]:
    if not (dx or dy):
        return list(rects)
    return [r.translated(dx, dy) for r in rects]


def _moved_viol(viol: DrcViolation, dx: int, dy: int) -> DrcViolation:
    if not (dx or dy):
        return viol
    return DrcViolation(viol.rule_name, viol.kind, viol.layers, viol.required,
                        viol.actual, viol.location.translated(dx, dy))


def _chain(finder: UnionFind, ids: Sequence[int]) -> None:
    for first, second in zip(ids, ids[1:]):
        finder.union(first, second)


def _source_of(offsets: Sequence[int], gid: int) -> int:
    return bisect_right(offsets, gid) - 1


class _BoxIndex:
    """Index over per-source bounding boxes: which sources are near a rect?

    Replaces O(sources) distance scans in the per-element composition loops
    with one localized query; sources with no geometry are skipped.
    """

    __slots__ = ("ids", "index")

    def __init__(self, boxes: Sequence[Optional[Rect]], skip_first: bool = False):
        start = 1 if skip_first else 0
        self.ids = [i for i in range(start, len(boxes)) if boxes[i] is not None]
        self.index = build_index([boxes[i] for i in self.ids])

    def near(self, region: Rect, margin: int = 0,
             strict: bool = False) -> List[int]:
        ids = self.ids
        return [ids[p] for p in self.index.query(region, margin=margin,
                                                 strict=strict)]


# -- per-layer merge artifact (DRC width/spacing run on merged regions) -------


class _LayerMerge:
    """The composed ``_merge_touching`` result of one layer.

    ``inputs`` is the non-degenerate rectangle list in flat order (the merge
    operates on filtered rects), ``components`` its touching-closure
    partition, ``merged`` the merge output in flat order.  ``child_maps[k]``
    re-bases instance ``k``'s merged ids into this cell's merged id space
    (-1 where the child component was merged across sources and its output
    no longer exists as such).
    """

    __slots__ = ("inputs", "offsets", "components", "comp_of_input",
                 "comp_slices", "comp_source", "merged", "merged_source",
                 "child_maps", "block_bboxes", "_input_index", "_merged_index",
                 "_bbox", "_box_index")

    def __init__(self) -> None:
        self.inputs: List[Rect] = []
        self.offsets: List[int] = [0]
        self.components: List[List[int]] = []
        self.comp_of_input: List[int] = []
        self.comp_slices: List[Tuple[int, int]] = []
        self.comp_source: List[int] = []
        self.merged: List[Rect] = []
        self.merged_source: List[int] = []
        self.child_maps: List[Optional[List[int]]] = []
        # Per-source bbox of that source's merge inputs, in this cell's
        # frame (None for empty blocks) — the prefilter for interface probes.
        self.block_bboxes: List[Optional[Rect]] = []
        self._input_index: Optional[SpatialIndex] = None
        self._merged_index: Optional[SpatialIndex] = None
        self._bbox: Optional[Tuple[Optional[Rect]]] = None
        self._box_index: Optional["_BoxIndex"] = None

    def box_index(self) -> "_BoxIndex":
        """Index over instance-block bboxes (own block excluded)."""
        if self._box_index is None:
            self._box_index = _BoxIndex(self.block_bboxes, skip_first=True)
        return self._box_index

    def input_index(self) -> SpatialIndex:
        if self._input_index is None:
            self._input_index = build_index(self.inputs)
        return self._input_index

    def merged_index(self) -> SpatialIndex:
        if self._merged_index is None:
            self._merged_index = build_index(self.merged)
        return self._merged_index

    def bbox(self) -> Optional[Rect]:
        if self._bbox is None:
            box: Optional[Rect] = None
            for rect in self.inputs:
                box = rect if box is None else box.union(rect)
            self._bbox = (box,)
        return self._bbox[0]

    _TRANSIENT = ("_input_index", "_merged_index", "_bbox", "_box_index")

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__
                if slot not in self._TRANSIENT}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        for slot in self._TRANSIENT:
            setattr(self, slot, None)


class _DrcArtifact:
    """Cached DRC result of one (cell, orientation): merges + id'd verdicts."""

    __slots__ = ("view", "merges", "viols")

    def __init__(self, view: _View):
        self.view = view
        self.merges: Dict[str, _LayerMerge] = {}
        # Per rule index: list of ((element ids...), violation), in the flat
        # checker's emission order for that rule.
        self.viols: List[List[Tuple[Tuple[int, ...], DrcViolation]]] = []


# -- extraction artifact ------------------------------------------------------


class _ExtractArtifact:
    """Cached extraction structure of one (cell, orientation).

    Holds everything the flat pipeline derives from geometry *before* node
    naming: channels, diffusion pieces, same-layer connectivity, contact and
    label resolutions, per-channel device data.  Node naming and port
    declaration are global (anonymous names follow the whole-chip group
    order), so they run only at the top level, in
    :meth:`HierAnalyzer._finish_extract` — linear, query-free work.
    """

    __slots__ = ("view", "diffusion", "diff_offsets", "crossings",
                 "chan_of_poly", "channels", "chan_x_diff", "pieces",
                 "piece_slices", "piece_edges", "poly_comps", "metal_comps",
                 "contact_touch", "buried_touch", "label_hits", "gates",
                 "terminals", "depletion", "_diff_index", "_piece_index")

    def __init__(self, view: _View):
        self.view = view
        self.diffusion: List[Rect] = []
        self.diff_offsets: List[int] = [0]     # per (layer, source) blocks
        # Per poly rect: [(global diffusion id, overlap, covered)] ascending.
        self.crossings: List[List[Tuple[int, Rect, bool]]] = []
        # Per poly rect: channel id per crossing (-1 where buried-covered).
        self.chan_of_poly: List[List[int]] = []
        self.channels: List[Rect] = []
        self.chan_x_diff: List[List[int]] = []  # per diffusion id, ascending
        self.pieces: List[Rect] = []
        self.piece_slices: List[Tuple[int, int]] = []
        self.piece_edges: List[Tuple[int, int]] = []
        self.poly_comps: List[List[int]] = []
        self.metal_comps: List[List[int]] = []
        self.contact_touch: List[List[int]] = []
        self.buried_touch: List[List[int]] = []
        self.label_hits: List[List[int]] = []
        self.gates: List[Optional[int]] = []
        self.terminals: List[List[int]] = []
        self.depletion: List[bool] = []
        self._diff_index: Optional[SpatialIndex] = None
        self._piece_index: Optional[SpatialIndex] = None

    def diff_index(self) -> SpatialIndex:
        if self._diff_index is None:
            self._diff_index = build_index(self.diffusion)
        return self._diff_index

    def piece_index(self) -> SpatialIndex:
        if self._piece_index is None:
            self._piece_index = build_index(self.pieces)
        return self._piece_index

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__
                if slot not in ("_diff_index", "_piece_index")}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._diff_index = None
        self._piece_index = None


# -- the analyzer -------------------------------------------------------------


class HierAnalyzer:
    """Hierarchical, caching DRC / extraction / metrics engine.

    One analyzer keys its artifacts by design *content* for one technology;
    reuse the same instance across calls (and across designs sharing
    cells — even independently rebuilt identical cells) to benefit from
    caching.  Results are byte-identical to
    ``DrcChecker(technology).check``, ``Extractor(technology).extract`` and
    ``measure_cell``.

    ``store`` is the :class:`repro.store.ArtifactStore` the artifacts live
    in; by default a fresh in-memory LRU, tiered over a durable on-disk
    store when the ``REPRO_STORE`` directory is configured — which is what
    makes warm starts survive process restarts.  Pass one store to several
    analyzers (or rely on a shared ``REPRO_STORE``) to share artifacts
    between them.

    ``use_parallel=True`` (the default) prewarms the depth-1 child
    artifacts across worker processes (:mod:`repro.parallel.hier`) when
    ``REPRO_WORKERS`` asks for 2+ workers and the design is large enough;
    the composition pass and its results are unchanged.
    """

    #: Artifact kinds whose payloads embed the cell's *name*
    #: (``ErcReport.name``, ``BlockTiming.name``): their store keys append
    #: the name so a renamed cell gets a correctly-named report, while the
    #: name-free geometric kinds stay fully rename-invariant.
    _NAME_KINDS = frozenset({"erc", "timing"})

    def __init__(self, technology: Technology, direct_threshold: int = 96,
                 use_parallel: bool = True,
                 store: Optional[ArtifactStore] = None):
        self.technology = technology
        self.use_parallel = use_parallel
        # Cells whose instances average fewer rectangles than this are
        # analyzed directly on their flat view instead of composed from
        # per-instance artifacts: tiling arrays of tiny cells (ROM/PLA bit
        # cells, register slices) abut everywhere, so composition would be
        # all interface pass and no reuse.  The direct artifact is still
        # cached and composed into *its* parents, which is where the big
        # instances-per-unique-cell reuse lives.
        self.direct_threshold = direct_threshold
        self._diffusion_layers = [
            name for name in ("diffusion", "active") if technology.has_layer(name)
        ]
        # Layers whose rules run on merged regions.
        self._merge_layers: List[str] = []
        seen: Set[str] = set()
        for rule in technology.rules:
            layers: Tuple[str, ...] = ()
            if rule.kind is RuleKind.MIN_WIDTH:
                layers = (rule.layers[0],)
            elif rule.kind is RuleKind.MIN_SPACING:
                layers = rule.layers
            for layer in layers:
                if layer not in seen:
                    seen.add(layer)
                    self._merge_layers.append(layer)
        self.store = store if store is not None else default_store()
        # The technology digest participates in every store key; one
        # analyzer serves one technology, so compute it once.
        self._tech_hash = technology_hash(technology)
        # Per-cell store-key memo: cell -> [subtree_version, {(kind,
        # orientation): key}].  Weakly keyed (dead designs drop their
        # memos); on a version mismatch the *old generation's* keys are
        # evicted from the store's memory tier before the memo resets, so
        # editing a cell N times retains one artifact generation, not N.
        self._keys: ("weakref.WeakKeyDictionary"
                     "[Cell, List]")
        self._keys = weakref.WeakKeyDictionary()
        self.stats = {"views": 0, "drc_artifacts": 0, "extract_artifacts": 0,
                      "drc_hits": 0, "extract_hits": 0,
                      "timing_artifacts": 0, "timing_hits": 0,
                      "erc_artifacts": 0, "erc_hits": 0}

    # -- public API ---------------------------------------------------------

    def _maybe_prewarm(self, cell: Cell, call: str) -> None:
        if not self.use_parallel:
            return
        from repro import parallel

        if parallel.worker_count() >= 2 and not parallel.in_worker():
            from repro.diagnostics import run_with_fallback
            from repro.parallel.hier import prewarm

            # A fan-out failure costs only the prewarm: the serial
            # composition pass recomputes whatever is missing.
            run_with_fallback(
                "hier artifact fan-out",
                lambda: prewarm(self, cell, call),
                lambda: None,
                code="FBK007")

    def drc(self, cell: Cell) -> List[DrcViolation]:
        """All design-rule violations, identical to the flat checker's list."""
        with obs_trace.span("hier.drc", cat="hier", cell=cell.name):
            self._maybe_prewarm(cell, "drc")
            artifact = self._drc_artifact(cell, Orientation.R0)
            return [viol for rule_viols in artifact.viols
                    for _ids, viol in rule_viols]

    def extract(self, cell: Cell) -> ExtractedCircuit:
        """Extracted netlist, identical to the flat extractor's output."""
        with obs_trace.span("hier.extract", cat="hier", cell=cell.name):
            self._maybe_prewarm(cell, "extract")
            artifact = self._extract_artifact(cell, Orientation.R0)
            return self._finish_extract(cell, artifact)

    def timing(self, cell: Cell) -> BlockTiming:
        """Static timing of the cell's extracted circuit, cached per cell.

        Artifacts are keyed by ``(content digest, orientation)`` exactly
        like the DRC/extraction artifacts: re-timing after an edit
        recomputes only the mutated cell and its ancestors (every other
        cell's artifact is a cache hit, visible in ``stats``), and the
        result is float-identical to a cold run because the analysis is a
        pure function of the (incrementally composed) extracted circuit.
        """
        with obs_trace.span("hier.timing", cat="hier", cell=cell.name):
            self._maybe_prewarm(cell, "timing")
            return self._timing_artifact(cell, Orientation.R0)

    def _timing_artifact(self, cell: Cell, orientation: Orientation) -> BlockTiming:
        hit = self._cached("timing", cell, orientation)
        if hit is not None:
            self.stats["timing_hits"] += 1
            return hit
        self.stats["timing_artifacts"] += 1
        span = obs_trace.span("hier.build.timing", cat="sta", cell=cell.name,
                              orientation=orientation.name)
        with span:
            return self._build_timing_artifact(cell, orientation)

    def _build_timing_artifact(self, cell: Cell,
                               orientation: Orientation) -> BlockTiming:
        view = self._view(cell, orientation)
        # Children first: their artifacts are shared across every chip of a
        # family that instantiates the same generator cells (and across
        # repeated placements within one chip).
        for source in view.sources[1:]:
            self._timing_artifact(source.cell, source.orientation)
        circuit = self._finish_extract(
            cell, self._extract_artifact(cell, orientation))
        timing = SwitchTimingAnalyzer(self.technology).analyze(circuit)
        return self._store("timing", cell, orientation, timing)

    def erc(self, cell: Cell) -> ErcReport:
        """Electrical rule check of the cell's extracted circuit, cached.

        Artifacts follow the timing pattern: keyed by ``(content digest,
        orientation)``, children prewarmed first so a family of
        chips shares every generator block's report, and the result is a
        pure function of the composed extracted circuit.
        """
        with obs_trace.span("hier.erc", cat="hier", cell=cell.name):
            self._maybe_prewarm(cell, "erc")
            return self._erc_artifact(cell, Orientation.R0)

    def _erc_artifact(self, cell: Cell, orientation: Orientation) -> ErcReport:
        hit = self._cached("erc", cell, orientation)
        if hit is not None:
            self.stats["erc_hits"] += 1
            return hit
        self.stats["erc_artifacts"] += 1
        with obs_trace.span("hier.build.erc", cat="erc", cell=cell.name,
                            orientation=orientation.name):
            view = self._view(cell, orientation)
            for source in view.sources[1:]:
                self._erc_artifact(source.cell, source.orientation)
            circuit = self._finish_extract(
                cell, self._extract_artifact(cell, orientation))
            report = ErcChecker().check_circuit(circuit)
            return self._store("erc", cell, orientation, report)

    def measure(self, cell: Cell) -> DesignMetrics:
        """Design metrics, identical to :func:`repro.metrics.measure_cell`."""
        with obs_trace.span("hier.measure", cat="hier", cell=cell.name):
            return self._measure(cell)

    def _measure(self, cell: Cell) -> DesignMetrics:
        view = self._view(cell, Orientation.R0)
        bbox = view.bbox
        distinct_cells = cell.descendants() + [cell]
        stats = CellStatistics(
            name=cell.name,
            bbox_width=0 if bbox is None else bbox.width,
            bbox_height=0 if bbox is None else bbox.height,
            bbox_area=0 if bbox is None else bbox.area,
            flattened_shape_count=view.shape_count,
            distinct_shape_count=sum(len(c.shapes) for c in distinct_cells),
            distinct_cell_count=len(distinct_cells),
            instance_count=cell.instance_count(),
            hierarchy_depth=hierarchy_depth(cell),
            mask_area_by_layer=self._areas(cell, Orientation.R0),
        )
        return metrics_from_stats(stats, self.technology,
                                  wire_length=view.path_length)

    # -- oriented views -----------------------------------------------------

    def _key(self, kind: str, cell: Cell, orientation: Orientation) -> str:
        """The store key of one artifact: pure content, no object identity.

        ``kind : orientation : cell digest : technology digest :
        composition threshold`` (the threshold shapes the view structure,
        so artifacts built under different thresholds must not collide),
        plus the cell name for the report kinds that embed it.  Keys are
        memoized per cell and validated against the transitive mutation
        counter; a mutated cell evicts its previous generation's keys from
        the memory tier on the way through, which bounds the store to one
        live generation per cell however often the design is edited.
        """
        version = cell.subtree_version
        memo = self._keys.get(cell)
        if memo is None:
            memo = [version, {}]
            self._keys[cell] = memo
        elif memo[0] != version:
            for stale in memo[1].values():
                self.store.evict(stale)
            memo[0] = version
            memo[1].clear()
        key = memo[1].get((kind, orientation))
        if key is None:
            key = (f"{kind}:{orientation.name}:{cell_digest(cell)}:"
                   f"{self._tech_hash}:{self.direct_threshold}")
            if kind in self._NAME_KINDS:
                key += ":" + cell.name
            memo[1][(kind, orientation)] = key
        return key

    def _cached(self, kind: str, cell: Cell, orientation: Orientation):
        with obs_trace.span("store.get", cat="store", kind=kind,
                            cell=cell.name) as span:
            value = self.store.get(self._key(kind, cell, orientation))
            span.set(hit=value is not None)
            return value

    def _store(self, kind: str, cell: Cell, orientation: Orientation, value):
        with obs_trace.span("store.put", cat="store", kind=kind,
                            cell=cell.name):
            self.store.put(self._key(kind, cell, orientation), value)
        return value

    def _view(self, cell: Cell, orientation: Orientation) -> _View:
        hit = self._cached("view", cell, orientation)
        if hit is not None:
            return hit
        self.stats["views"] += 1
        transform = Transform(orientation, _ORIGIN)
        identity = orientation is Orientation.R0

        own = _View(cell.name)
        own_bbox: Optional[Rect] = None
        for shape in cell.shapes:
            if not identity:
                shape = shape.transformed(transform)
            own.rects.setdefault(shape.layer, []).extend(shape.as_rects())
            box = shape.bbox
            own_bbox = box if own_bbox is None else own_bbox.union(box)
            own.shape_count += 1
            if isinstance(shape.geometry, Path):
                own.path_length += shape.geometry.length
        own.labels = (list(cell.labels) if identity
                      else [label.transformed(transform) for label in cell.labels])
        own.bbox = own_bbox

        view = _View(cell.name)
        view.sources = [_Source(own, 0, 0, None, None)]
        for instance in cell.instances:
            child_orientation = instance.transform.orientation.then(orientation)
            translation = orientation.apply(instance.transform.translation)
            child = self._view(instance.cell, child_orientation)
            view.sources.append(_Source(child, translation.x, translation.y,
                                        instance.cell, child_orientation))

        layers: List[str] = []
        for source in view.sources:
            for layer in source.view.rects:
                if layer not in layers:
                    layers.append(layer)
        for layer in layers:
            buffer: List[Rect] = []
            offsets = [0]
            for source in view.sources:
                buffer.extend(_translated(source.view.layer(layer),
                                          source.dx, source.dy))
                offsets.append(len(buffer))
            view.rects[layer] = buffer
            view.offsets[layer] = offsets
        for source in view.sources:
            if source.dx or source.dy:
                view.labels.extend(label.translated(source.dx, source.dy)
                                   for label in source.view.labels)
            else:
                view.labels.extend(source.view.labels)
            view.label_offsets.append(len(view.labels))
        view.shape_count = sum(source.view.shape_count for source in view.sources)
        view.path_length = sum(source.view.path_length for source in view.sources)
        bbox: Optional[Rect] = None
        for source in view.sources:
            box = source.bbox()
            if box is not None:
                bbox = box if bbox is None else bbox.union(box)
        view.bbox = bbox

        # Tiling arrays of tiny cells: collapse to one "own" source so the
        # analysis artifacts are computed directly on the flat view (the
        # composition paths treat own geometry exactly like the flat
        # engines).  The collapsed artifact composes into parents normally.
        instance_count = len(view.sources) - 1
        if instance_count:
            child_rects = sum(offs[-1] - offs[1]
                              for offs in view.offsets.values())
            if child_rects < self.direct_threshold * instance_count:
                view.sources = [_Source(view, 0, 0, None, None)]
                view.offsets = {layer: [0, len(rects)]
                                for layer, rects in view.rects.items()}
                view.label_offsets = [0, len(view.labels)]
        return self._store("view", cell, orientation, view)

    # -- shared component composition ---------------------------------------

    def _cross_block_pairs(self, offsets: Sequence[int], items: Sequence[Rect],
                           block_indexes: Sequence[SpatialIndex],
                           block_moves: Sequence[Tuple[int, int]],
                           block_bboxes: Sequence[Optional[Rect]]
                           ) -> List[Tuple[int, int]]:
        """Touching pairs that span two blocks, by localized index probes.

        For every rect of block *i* near block *j*'s bbox, block *j* is
        probed with that rect; touching is intrinsic to the pair, so the
        result is exactly the set of cross-block edges of the global
        touching graph.
        """
        pairs: List[Tuple[int, int]] = []
        blocks = len(block_indexes)
        for i in range(blocks):
            box_i = block_bboxes[i]
            if box_i is None:
                continue
            for j in range(i + 1, blocks):
                box_j = block_bboxes[j]
                if box_j is None or not box_i.touches(box_j):
                    continue
                dx_i, dy_i = block_moves[i]
                dx_j, dy_j = block_moves[j]
                probe_region = box_j.translated(-dx_i, -dy_i)
                index_j = block_indexes[j]
                for ci in block_indexes[i].query(probe_region):
                    rect = items[offsets[i] + ci]
                    local = rect.translated(-dx_j, -dy_j)
                    for cj in index_j.query(local):
                        pairs.append((offsets[i] + ci, offsets[j] + cj))
        return pairs

    def _compose_partition(self, count: int, offsets: Sequence[int],
                           block_comps: Sequence[Sequence[Sequence[int]]],
                           cross_pairs: Sequence[Tuple[int, int]]) -> UnionFind:
        """Touching-closure partition from per-block partitions + edges.

        Each block's internal partition is replayed under its id offset and
        the cross-block edges are unioned on top; replayed unions are always
        valid (rect existence and touching are intrinsic), so the closure
        equals the flat all-pairs partition.
        """
        finder = UnionFind(count)
        for block, comps in enumerate(block_comps):
            offset = offsets[block]
            for comp in comps:
                if len(comp) > 1:
                    for first, second in zip(comp, comp[1:]):
                        finder.union(offset + first, offset + second)
        for a, b in cross_pairs:
            finder.union(a, b)
        return finder

    # -- DRC ----------------------------------------------------------------

    def _drc_artifact(self, cell: Cell, orientation: Orientation) -> _DrcArtifact:
        hit = self._cached("drc", cell, orientation)
        if hit is not None:
            self.stats["drc_hits"] += 1
            return hit
        self.stats["drc_artifacts"] += 1
        with obs_trace.span("hier.build.drc", cat="drc", cell=cell.name,
                            orientation=orientation.name):
            return self._build_drc_artifact(cell, orientation)

    def _build_drc_artifact(self, cell: Cell,
                            orientation: Orientation) -> _DrcArtifact:
        view = self._view(cell, orientation)
        children: List[Optional[_DrcArtifact]] = [None]
        for source in view.sources[1:]:
            children.append(self._drc_artifact(source.cell, source.orientation))

        artifact = _DrcArtifact(view)
        for layer in self._merge_layers:
            artifact.merges[layer] = self._compose_merge(view, children, layer)

        for rule_index, rule in enumerate(self.technology.rules):
            if rule.kind is RuleKind.MIN_WIDTH:
                composed = self._compose_width(
                    rule, rule_index, view, children,
                    artifact.merges[rule.layers[0]])
            elif rule.kind is RuleKind.MIN_SPACING:
                composed = self._compose_spacing(
                    rule, rule_index, view, children,
                    artifact.merges[rule.layers[0]],
                    artifact.merges[rule.layers[1]])
            elif rule.kind is RuleKind.MIN_ENCLOSURE:
                if self._is_implant(rule.layers[0]):
                    # Device-formation rule: validated by the extractor, as
                    # in the flat checker.
                    composed = []
                else:
                    composed = self._compose_enclosure(rule, rule_index, view,
                                                       children)
            elif rule.kind is RuleKind.EXACT_SIZE:
                composed = self._compose_exact(rule, rule_index, view, children)
            else:
                # MIN_EXTENSION / MIN_OVERLAP: device-formation rules, not
                # checked geometrically (matches the flat checker).
                composed = []
            artifact.viols.append(composed)
        return self._store("drc", cell, orientation, artifact)

    def _is_implant(self, layer_name: str) -> bool:
        layer = self.technology.layers.get(layer_name)
        if layer is None:
            return False
        return layer.purpose.name in ("IMPLANT", "WELL")

    def _compose_merge(self, view: _View, children: Sequence[Optional[_DrcArtifact]],
                       layer: str) -> _LayerMerge:
        merge = _LayerMerge()
        # The filtered list shares the view's rect objects: filtering
        # commutes with translation, so the slice per source equals the
        # child's filtered inputs translated.
        merge.inputs = inputs = [r for r in view.layer(layer)
                                 if not r.is_degenerate]
        block_comps: List[Sequence[Sequence[int]]] = []
        block_indexes: List[SpatialIndex] = []
        block_moves: List[Tuple[int, int]] = []
        block_bboxes: List[Optional[Rect]] = []

        own_count = 0
        raw_offsets = view.offsets.get(layer)
        if raw_offsets is not None:
            own_count = sum(1 for r in view.layer(layer)[:raw_offsets[1]]
                            if not r.is_degenerate)
        own_filtered = inputs[:own_count]
        own_index = build_index(own_filtered)
        merge.offsets.append(own_count)
        block_comps.append(own_index.connected_components())
        block_indexes.append(own_index)
        block_moves.append((0, 0))
        own_box: Optional[Rect] = None
        for rect in own_filtered:
            own_box = rect if own_box is None else own_box.union(rect)
        block_bboxes.append(own_box)

        for k, source in enumerate(view.sources[1:], 1):
            child = children[k].merges[layer]
            merge.offsets.append(merge.offsets[-1] + len(child.inputs))
            block_comps.append(child.components)
            block_indexes.append(child.input_index())
            block_moves.append((source.dx, source.dy))
            box = child.bbox()
            block_bboxes.append(None if box is None
                                else box.translated(source.dx, source.dy))

        merge.block_bboxes = block_bboxes
        cross_pairs = self._cross_block_pairs(merge.offsets, inputs,
                                              block_indexes, block_moves,
                                              block_bboxes)
        if not cross_pairs:
            # No geometry touches across blocks: the global partition is the
            # concatenation of the block partitions, in block order (own ids
            # precede every instance block, so smallest-member order holds).
            self._concat_merge(merge, view, children, layer, block_comps[0])
            return merge
        finder = self._compose_partition(len(inputs), merge.offsets,
                                         block_comps, cross_pairs)
        merge.components = finder.components()
        merge.comp_of_input = [0] * len(inputs)
        merge.child_maps = [None] + [
            [-1] * len(children[k].merges[layer].merged)
            for k in range(1, len(view.sources))
        ]
        offsets = merge.offsets
        for comp_index, comp in enumerate(merge.components):
            for member in comp:
                merge.comp_of_input[member] = comp_index
            src = _source_of(offsets, comp[0])
            single = src >= 1 and comp[-1] < offsets[src + 1]
            start = len(merge.merged)
            if single:
                child = children[src].merges[layer]
                source = view.sources[src]
                child_comp = child.comp_of_input[comp[0] - offsets[src]]
                child_start, child_len = child.comp_slices[child_comp]
                child_map = merge.child_maps[src]
                for position in range(child_len):
                    child_map[child_start + position] = start + position
                if (child_len == 1 and len(comp) == 1
                        and child.merged[child_start] is child.inputs[comp[0] - offsets[src]]):
                    # Singleton component: the merge output is the input
                    # rect itself, already materialized in this frame.
                    merge.merged.append(inputs[comp[0]])
                else:
                    merge.merged.extend(_translated(
                        child.merged[child_start:child_start + child_len],
                        source.dx, source.dy))
                merge.comp_source.append(src)
            else:
                group = [inputs[i] for i in comp]
                bounding = group[0]
                for rect in group[1:]:
                    bounding = bounding.union(rect)
                if merged_area(group) == bounding.area:
                    merge.merged.append(bounding)
                else:
                    merge.merged.extend(group)
                merge.comp_source.append(-1)
            length = len(merge.merged) - start
            merge.comp_slices.append((start, length))
            merge.merged_source.extend([merge.comp_source[-1]] * length)
        return merge

    def _concat_merge(self, merge: _LayerMerge, view: _View, children,
                      layer: str, own_comps) -> None:
        """Fill a :class:`_LayerMerge` for a layer with no cross-block edges.

        Every block's cached partition and merge output carries over under
        offset arithmetic; only the cell's own components need the merge
        computation.  This skips the whole union-find replay, which is the
        bulk of composition time for well-separated placements.
        """
        inputs = merge.inputs
        offsets = merge.offsets
        components = merge.components
        merged = merge.merged
        merge.child_maps = [None] * len(view.sources)
        own_comp_of_input = [0] * offsets[1]
        for comp_index, comp in enumerate(own_comps):
            for member in comp:
                own_comp_of_input[member] = comp_index
            start = len(merged)
            if len(comp) == 1:
                merged.append(inputs[comp[0]])
            else:
                group = [inputs[i] for i in comp]
                bounding = group[0]
                for rect in group[1:]:
                    bounding = bounding.union(rect)
                if merged_area(group) == bounding.area:
                    merged.append(bounding)
                else:
                    merged.extend(group)
            length = len(merged) - start
            merge.comp_slices.append((start, length))
            merge.comp_source.append(-1)
            merge.merged_source.extend([-1] * length)
            components.append(list(comp))
        merge.comp_of_input = own_comp_of_input
        for k, source in enumerate(view.sources[1:], 1):
            child = children[k].merges[layer]
            comp_base = len(components)
            offset = offsets[k]
            if offset:
                components.extend([m + offset for m in comp]
                                  for comp in child.components)
            else:
                components.extend(list(comp) for comp in child.components)
            merge.comp_of_input.extend(c + comp_base
                                       for c in child.comp_of_input)
            merged_base = len(merged)
            merged.extend(_translated(child.merged, source.dx, source.dy))
            merge.merged_source.extend([k] * len(child.merged))
            merge.comp_slices.extend((s + merged_base, length)
                                     for s, length in child.comp_slices)
            merge.comp_source.extend([k] * len(child.components))
            merge.child_maps[k] = list(range(merged_base,
                                             merged_base + len(child.merged)))

    def _compose_width(self, rule, rule_index: int, view: _View,
                       children, merge: _LayerMerge):
        out = []
        for k, source in enumerate(view.sources[1:], 1):
            child_map = merge.child_maps[k]
            for ids, viol in children[k].viols[rule_index]:
                gid = child_map[ids[0]]
                if gid >= 0:
                    out.append(((gid,), _moved_viol(viol, source.dx, source.dy)))
        for comp_index, comp_source in enumerate(merge.comp_source):
            if comp_source != -1:
                continue
            start, length = merge.comp_slices[comp_index]
            for gid in range(start, start + length):
                viol = width_violation(rule, merge.merged[gid])
                if viol is not None:
                    out.append(((gid,), viol))
        out.sort(key=lambda entry: entry[0])
        return out

    def _merged_candidates(self, view: _View, children, layer: str,
                           merge: _LayerMerge, new_ids: List[int],
                           new_index: SpatialIndex, rect: Rect,
                           reach: int) -> List[int]:
        """Global merged ids of ``layer`` possibly within ``reach`` of rect."""
        found: List[int] = []
        for k in merge.box_index().near(rect, margin=reach):
            source = view.sources[k]
            child = children[k].merges[layer]
            child_map = merge.child_maps[k]
            local = rect.translated(-source.dx, -source.dy)
            for cid in child.merged_index().query(local, margin=reach):
                gid = child_map[cid]
                if gid >= 0:
                    found.append(gid)
        for position in new_index.query(rect, margin=reach):
            found.append(new_ids[position])
        return found

    def _compose_spacing(self, rule, rule_index: int, view: _View,
                         children, merge_a: _LayerMerge, merge_b: _LayerMerge):
        same_layer = merge_a is merge_b
        reach = rule.value - 1
        out = []
        for k, source in enumerate(view.sources[1:], 1):
            map_a = merge_a.child_maps[k]
            map_b = merge_b.child_maps[k]
            for ids, viol in children[k].viols[rule_index]:
                ga = map_a[ids[0]]
                gb = map_b[ids[1]]
                if ga >= 0 and gb >= 0:
                    out.append(((ga, gb), _moved_viol(viol, source.dx, source.dy)))

        layer_a, layer_b = rule.layers[0], rule.layers[1]
        new_a = [g for g, s in enumerate(merge_a.merged_source) if s == -1]
        new_index_a = build_index([merge_a.merged[g] for g in new_a])
        if same_layer:
            new_b, new_index_b = new_a, new_index_a
        else:
            new_b = [g for g, s in enumerate(merge_b.merged_source) if s == -1]
            new_index_b = build_index([merge_b.merged[g] for g in new_b])

        def suspects(merge_from: _LayerMerge, layer_from: str,
                     merge_other: _LayerMerge, layer_other: str,
                     new_other: List[int]) -> Set[int]:
            """Reused elements of one layer near foreign other-layer stuff."""
            found: Set[int] = set()
            from_index = merge_from.box_index()
            other_boxes = merge_other.block_bboxes
            for j in range(1, len(view.sources)):
                other_box = other_boxes[j]
                if other_box is None:
                    continue
                for k in from_index.near(other_box, margin=reach):
                    if k == j:
                        continue
                    source = view.sources[k]
                    child = children[k].merges[layer_from]
                    child_map = merge_from.child_maps[k]
                    local = other_box.translated(-source.dx, -source.dy)
                    for cid in child.merged_index().query(local, margin=reach):
                        gid = child_map[cid]
                        if gid >= 0:
                            found.add(gid)
            # Near the computed (own / cross-merged) other-layer elements.
            for gid_other in new_other:
                rect = merge_other.merged[gid_other]
                for k in from_index.near(rect, margin=reach):
                    source = view.sources[k]
                    child = children[k].merges[layer_from]
                    child_map = merge_from.child_maps[k]
                    local = rect.translated(-source.dx, -source.dy)
                    for cid in child.merged_index().query(local, margin=reach):
                        gid = child_map[cid]
                        if gid >= 0:
                            found.add(gid)
            return found

        suspects_a = suspects(merge_a, layer_a, merge_b, layer_b, new_b)
        pairs: Set[Tuple[int, int]] = set()

        def collect(a_ids: Iterable[int]) -> None:
            for a in a_ids:
                rect = merge_a.merged[a]
                for b in self._merged_candidates(view, children, layer_b,
                                                 merge_b, new_b, new_index_b,
                                                 rect, reach):
                    if same_layer:
                        if a == b:
                            continue
                        pairs.add((a, b) if a < b else (b, a))
                    else:
                        pairs.add((a, b))

        collect(new_a)
        collect(suspects_a)
        if same_layer:
            pass  # the a-side sweep covered both directions
        else:
            suspects_b = suspects(merge_b, layer_b, merge_a, layer_a, new_a)
            for b in list(new_b) + sorted(suspects_b):
                rect = merge_b.merged[b]
                for a in self._merged_candidates(view, children, layer_a,
                                                 merge_a, new_a, new_index_a,
                                                 rect, reach):
                    pairs.add((a, b))

        for a, b in pairs:
            source_a = merge_a.merged_source[a]
            if source_a != -1 and source_a == merge_b.merged_source[b]:
                continue  # same-instance pair: the child artifact covered it
            viol = spacing_violation(rule, merge_a.merged[a], merge_b.merged[b])
            if viol is not None:
                out.append(((a, b), viol))
        out.sort(key=lambda entry: entry[0])
        return out

    def _compose_enclosure(self, rule, rule_index: int, view: _View, children):
        outer_layer, inner_layer = rule.layers[0], rule.layers[1]
        inner = view.layer(inner_layer)
        inner_offsets = view.offsets.get(inner_layer, [0] * (len(view.sources) + 1))
        margin = rule.value
        suspect: Set[int] = set(range(inner_offsets[0], inner_offsets[1]))

        own_view = view.sources[0].view
        own_outer_index = own_view.index(outer_layer)
        own_outer = own_view.layer(outer_layer)
        inner_boxes: List[Optional[Rect]] = []
        outer_boxes: List[Optional[Rect]] = []
        for source in view.sources:
            for table, layer in ((inner_boxes, inner_layer),
                                 (outer_boxes, outer_layer)):
                box = source.view.layer_bbox(layer)
                table.append(None if box is None
                             else box.translated(source.dx, source.dy))
        for k, source in enumerate(view.sources[1:], 1):
            box_k = inner_boxes[k]
            if box_k is None:
                continue
            offset = inner_offsets[k]
            # Foreign instances' outer geometry.
            for j in range(1, len(view.sources)):
                if j == k:
                    continue
                other_box = outer_boxes[j]
                if other_box is None or box_k.distance_to(other_box) > margin:
                    continue
                for cid in source.probe(inner_layer, other_box, margin=margin):
                    suspect.add(offset + cid)
            # The cell's own outer geometry near this instance.
            if own_outer:
                for oid in own_outer_index.query(box_k, margin=margin):
                    for cid in source.probe(inner_layer, own_outer[oid],
                                            margin=margin):
                        suspect.add(offset + cid)

        out = []
        for k, source in enumerate(view.sources[1:], 1):
            offset = inner_offsets[k]
            for ids, viol in children[k].viols[rule_index]:
                gid = offset + ids[0]
                if gid not in suspect:
                    out.append(((gid,), _moved_viol(viol, source.dx, source.dy)))

        for gid in sorted(suspect):
            rect = inner[gid]
            grown = rect.expanded(margin)
            triggered = False
            nearby: List[Rect] = []
            for k, source in enumerate(view.sources):
                box = outer_boxes[k]
                if box is None or not grown.touches(box):
                    continue
                if not triggered and source.probe(outer_layer, rect, strict=True):
                    triggered = True
                for oid in source.probe(outer_layer, rect, margin=margin):
                    nearby.append(source.global_rect(outer_layer, oid))
            viol = enclosure_violation(rule, rect, nearby, triggered)
            if viol is not None:
                out.append(((gid,), viol))
        out.sort(key=lambda entry: entry[0])
        return out

    def _compose_exact(self, rule, rule_index: int, view: _View, children):
        layer = rule.layers[0]
        offsets = view.offsets.get(layer, [0] * (len(view.sources) + 1))
        out = []
        for k, source in enumerate(view.sources[1:], 1):
            offset = offsets[k]
            for ids, viol in children[k].viols[rule_index]:
                out.append(((offset + ids[0],),
                            _moved_viol(viol, source.dx, source.dy)))
        for gid in range(offsets[0], offsets[1]):
            viol = exact_size_violation(rule, view.layer(layer)[gid])
            if viol is not None:
                out.append(((gid,), viol))
        out.sort(key=lambda entry: entry[0])
        return out

    # -- extraction ---------------------------------------------------------

    def _extract_artifact(self, cell: Cell, orientation: Orientation) -> _ExtractArtifact:
        hit = self._cached("extract", cell, orientation)
        if hit is not None:
            self.stats["extract_hits"] += 1
            return hit
        self.stats["extract_artifacts"] += 1
        with obs_trace.span("hier.build.extract", cat="extract",
                            cell=cell.name, orientation=orientation.name):
            return self._build_extract_artifact(cell, orientation)

    def _build_extract_artifact(self, cell: Cell, orientation: Orientation
                                ) -> "_ExtractArtifact":
        view = self._view(cell, orientation)
        sources = view.sources
        children: List[Optional[_ExtractArtifact]] = [None]
        for source in sources[1:]:
            children.append(self._extract_artifact(source.cell, source.orientation))
        art = _ExtractArtifact(view)
        DL = self._diffusion_layers
        own_view = sources[0].view

        src_bbox: List[Optional[Rect]] = [s.bbox() for s in sources]

        # Global diffusion list: layer-major, source blocks within a layer —
        # exactly the flat extractor's `[r for layer in DL for r in rects]`.
        diff_map: List[Optional[List[int]]] = [None] + [
            [0] * len(children[k].diffusion) for k in range(1, len(sources))
        ]
        own_diff_ids: List[int] = []
        child_layer_counts = [None] + [
            [len(children[k].view.layer(layer)) for layer in DL]
            for k in range(1, len(sources))
        ]
        for layer_pos, layer in enumerate(DL):
            # The concat shares the view's already-materialized rect lists.
            rects = view.layer(layer)
            offs = view.offsets.get(layer, [0] * (len(sources) + 1))
            base = len(art.diffusion)
            art.diffusion.extend(rects)
            for k in range(len(sources)):
                art.diff_offsets.append(base + offs[k + 1])
                if k == 0:
                    own_diff_ids.extend(range(base, base + offs[1]))
                else:
                    # Child diffusion ids are layer-major too; re-base this
                    # layer's block.
                    child_start = sum(child_layer_counts[k][:layer_pos])
                    start = base + offs[k]
                    cmap = diff_map[k]
                    for position in range(offs[k + 1] - offs[k]):
                        cmap[child_start + position] = start + position

        poly = view.layer("poly")
        poly_offsets = view.offsets.get("poly", [0] * (len(sources) + 1))
        metal = view.layer("metal")
        metal_offsets = view.offsets.get("metal", [0] * (len(sources) + 1))

        # --- stage 1: channels (poly x diffusion minus buried) -------------
        def layer_boxes(layer: str) -> List[Optional[Rect]]:
            boxes: List[Optional[Rect]] = []
            for source in sources:
                box = source.view.layer_bbox(layer)
                boxes.append(None if box is None
                             else box.translated(source.dx, source.dy))
            return boxes

        diff_boxes: List[Optional[Rect]] = []
        for source in sources:
            diff_box: Optional[Rect] = None
            for layer in DL:
                box = source.view.layer_bbox(layer)
                if box is not None:
                    diff_box = box if diff_box is None else diff_box.union(box)
            diff_boxes.append(None if diff_box is None
                              else diff_box.translated(source.dx, source.dy))
        poly_boxes = layer_boxes("poly")
        metal_boxes = layer_boxes("metal")
        buried_boxes = layer_boxes("buried")
        implant_boxes = layer_boxes("implant")
        diff_box_index = _BoxIndex(diff_boxes)
        child_diff_box_index = _BoxIndex(diff_boxes, skip_first=True)
        poly_box_index = _BoxIndex(poly_boxes)
        metal_box_index = _BoxIndex(metal_boxes)
        buried_box_index = _BoxIndex(buried_boxes)
        implant_box_index = _BoxIndex(implant_boxes)
        # Channels of an instance lie inside poly ∩ diffusion of that
        # instance; devices reference poly, diffusion pieces and implant.
        chan_boxes: List[Optional[Rect]] = [None]
        device_boxes: List[Optional[Rect]] = [None]
        for k in range(1, len(sources)):
            pb, db, ib = poly_boxes[k], diff_boxes[k], implant_boxes[k]
            chan_boxes.append(None if pb is None or db is None
                              else pb.intersection(db))
            box = pb
            for other in (db, ib):
                if other is not None:
                    box = other if box is None else box.union(other)
            device_boxes.append(box)
        chan_box_index = _BoxIndex(chan_boxes, skip_first=True)
        device_box_index = _BoxIndex(device_boxes, skip_first=True)
        suspect_poly: Set[int] = set(range(poly_offsets[0], poly_offsets[1]))
        for k, source in enumerate(sources[1:], 1):
            box_k = poly_boxes[k]
            if box_k is None:
                continue
            offset = poly_offsets[k]
            for j, other in enumerate(sources):
                if j == k:
                    continue
                diff_box = diff_boxes[j]
                if diff_box is None or not box_k.overlaps(diff_box, strict=True):
                    continue
                for cid in source.probe("poly", diff_box, strict=True):
                    suspect_poly.add(offset + cid)

        def diffusion_candidates(region: Rect, strict: bool) -> List[int]:
            found: List[int] = []
            for k in diff_box_index.near(region, strict=strict):
                source = sources[k]
                for layer_pos, layer in enumerate(DL):
                    block_start = art.diff_offsets[layer_pos * len(sources) + k]
                    for cid in source.probe(layer, region, strict=strict):
                        found.append(block_start + cid)
            found.sort()
            return found

        def buried_covered_global(overlap: Rect) -> bool:
            for k in buried_box_index.near(overlap):
                source = sources[k]
                for cid in source.probe("buried", overlap):
                    if source.global_rect("buried", cid).contains_rect(overlap):
                        return True
            return False
        seen_channels: Dict[Rect, int] = {}
        fresh_channels: Set[int] = set()
        chan_map: List[Optional[List[int]]] = [None] + [
            [-1] * len(children[k].channels) for k in range(1, len(sources))
        ]
        # Per-block interface flags: a block well clear of every other
        # source's relevant geometry skips the per-element checks entirely.
        buried_foreign = [False] * len(sources)
        chan_foreign = [False] * len(sources)
        for k in range(1, len(sources)):
            box = src_bbox[k]
            if box is None:
                continue
            buried_foreign[k] = any(j != k for j in buried_box_index.near(box))
            diff_box = diff_boxes[k]
            if diff_box is not None:
                chan_foreign[k] = any(
                    j != k for j in chan_box_index.near(diff_box, strict=True))

        for src in range(len(sources)):
            source = sources[src]
            child = children[src]
            cmap = diff_map[src]
            check_buried = src == 0 or buried_foreign[src]
            moves = src > 0 and (source.dx or source.dy)
            for p_gid in range(poly_offsets[src], poly_offsets[src + 1]):
                crossings: List[Tuple[int, Rect, bool]] = []
                channel_ids: List[int] = []
                if src == 0 or p_gid in suspect_poly:
                    poly_rect = poly[p_gid]
                    for d_gid in diffusion_candidates(poly_rect, strict=True):
                        overlap = poly_rect.intersection(art.diffusion[d_gid])
                        if overlap is None or overlap.is_degenerate:
                            continue
                        crossings.append((d_gid, overlap,
                                          buried_covered_global(overlap)))
                    reused_from = -1
                else:
                    local_p = p_gid - poly_offsets[src]
                    for d_local, overlap, covered in child.crossings[local_p]:
                        if moves:
                            overlap = overlap.translated(source.dx, source.dy)
                        # The buried-cover verdict can flip if foreign buried
                        # material reaches the crossing.
                        if check_buried and any(
                                j != src for j in buried_box_index.near(overlap)):
                            covered = buried_covered_global(overlap)
                        crossings.append((cmap[d_local], overlap, covered))
                    reused_from = src
                for cross_pos, (d_gid, overlap, covered) in enumerate(crossings):
                    if covered:
                        channel_ids.append(-1)
                        continue
                    cid = seen_channels.get(overlap)
                    if cid is None:
                        cid = len(art.channels)
                        art.channels.append(overlap)
                        seen_channels[overlap] = cid
                    channel_ids.append(cid)
                    if reused_from >= 0:
                        child_cid = child.chan_of_poly[
                            p_gid - poly_offsets[src]][cross_pos]
                        if child_cid >= 0:
                            chan_map[src][child_cid] = cid
                    else:
                        fresh_channels.add(cid)
                art.crossings.append(crossings)
                art.chan_of_poly.append(channel_ids)

        # --- stage 2: split diffusion by crossing channels ------------------
        suspect_diff: Set[int] = set(own_diff_ids)
        for layer_pos in range(len(DL)):
            for src in range(1, len(sources)):
                if not chan_foreign[src]:
                    # Reused channels of other instances lie inside their
                    # poly ∩ diffusion extents, none of which reach this
                    # block; fresh channels are handled below.
                    continue
                block = layer_pos * len(sources) + src
                for d_gid in range(art.diff_offsets[block],
                                   art.diff_offsets[block + 1]):
                    rect = art.diffusion[d_gid]
                    if any(j != src
                           for j in chan_box_index.near(rect, strict=True)):
                        suspect_diff.add(d_gid)
        for cid in fresh_channels:
            for d_gid in diffusion_candidates(art.channels[cid], strict=True):
                suspect_diff.add(d_gid)

        channel_index = build_index(art.channels)
        piece_map: List[Optional[List[int]]] = [None] + [
            [-1] * len(children[k].pieces) for k in range(1, len(sources))
        ]
        for layer_pos in range(len(DL)):
            for src in range(len(sources)):
                block = layer_pos * len(sources) + src
                source = sources[src]
                child = children[src]
                cmap = chan_map[src]
                pmap = piece_map[src]
                local_base = (child_layer_counts[src][:layer_pos]
                              if src else None)
                local_start = sum(local_base) if src else 0
                block_start = art.diff_offsets[block]
                for d_gid in range(block_start, art.diff_offsets[block + 1]):
                    d_rect = art.diffusion[d_gid]
                    if src >= 1 and d_gid not in suspect_diff:
                        d_local = local_start + (d_gid - block_start)
                        child_cross = child.chan_x_diff[d_local]
                        if all(cmap[c] >= 0 for c in child_cross):
                            crossing_ids = sorted(cmap[c] for c in child_cross)
                            start = len(art.pieces)
                            p_start, p_len = child.piece_slices[d_local]
                            if (p_len == 1 and child.pieces[p_start]
                                    is child.diffusion[d_local]):
                                # Unsplit rectangle: the piece is the
                                # diffusion rect itself, already
                                # materialized in this frame.
                                art.pieces.append(d_rect)
                                pmap[p_start] = start
                            else:
                                art.pieces.extend(_translated(
                                    child.pieces[p_start:p_start + p_len],
                                    source.dx, source.dy))
                                for position in range(p_len):
                                    pmap[p_start + position] = start + position
                            art.piece_slices.append((start, p_len))
                            art.chan_x_diff.append(crossing_ids)
                            continue
                    crossing_ids = channel_index.query(d_rect, strict=True)
                    start = len(art.pieces)
                    art.pieces.extend(split_by_channels(
                        d_rect, [art.channels[i] for i in crossing_ids]))
                    art.piece_slices.append((start, len(art.pieces) - start))
                    art.chan_x_diff.append(list(crossing_ids))

        new_pieces = [g for g in range(len(art.pieces))]
        mapped: Set[int] = set()
        for k in range(1, len(sources)):
            for gid in piece_map[k]:
                if gid >= 0:
                    mapped.add(gid)
        new_pieces = [g for g in new_pieces if g not in mapped]
        new_piece_rects = [art.pieces[g] for g in new_pieces]
        new_piece_index = build_index(new_piece_rects)

        def piece_candidates(region: Rect, strict: bool = False) -> List[int]:
            found: List[int] = []
            for k in child_diff_box_index.near(region, strict=strict):
                child = children[k]
                if not child.pieces:
                    continue
                source = sources[k]
                pmap = piece_map[k]
                local = region.translated(-source.dx, -source.dy)
                for cid in child.piece_index().query(local, strict=strict):
                    gid = pmap[cid]
                    if gid >= 0:
                        found.append(gid)
            for position in new_piece_index.query(region, strict=strict):
                found.append(new_pieces[position])
            found.sort()
            return found

        # --- stage 3: same-layer connectivity -------------------------------
        edge_set: Set[Tuple[int, int]] = set()
        for k, source in enumerate(sources[1:], 1):
            pmap = piece_map[k]
            for i, j in children[k].piece_edges:
                gi, gj = pmap[i], pmap[j]
                if gi >= 0 and gj >= 0:
                    edge_set.add((gi, gj) if gi < gj else (gj, gi))
        for gid in new_pieces:
            rect = art.pieces[gid]
            for other in piece_candidates(rect):
                if other != gid:
                    edge_set.add((gid, other) if gid < other else (other, gid))
        # Cross-instance abutments between reused pieces.
        for k in range(1, len(sources)):
            child_k = children[k]
            if not child_k.pieces:
                continue
            pmap_k = piece_map[k]
            source_k = sources[k]
            for j in range(k + 1, len(sources)):
                child_j = children[j]
                if not child_j.pieces:
                    continue
                box_j = src_bbox[j]
                box_k = src_bbox[k]
                if box_j is None or box_k is None or not box_k.touches(box_j):
                    continue
                pmap_j = piece_map[j]
                source_j = sources[j]
                local_k = box_j.translated(-source_k.dx, -source_k.dy)
                for ck in child_k.piece_index().query(local_k):
                    gk = pmap_k[ck]
                    if gk < 0:
                        continue
                    rect = art.pieces[gk]
                    local_j = rect.translated(-source_j.dx, -source_j.dy)
                    for cj in child_j.piece_index().query(local_j):
                        gj = pmap_j[cj]
                        if gj >= 0:
                            edge_set.add((gk, gj) if gk < gj else (gj, gk))
        art.piece_edges = sorted(edge_set)

        art.poly_comps = self._compose_layer_components(view, "poly",
                                                        [c.poly_comps if c else None
                                                         for c in children])
        art.metal_comps = self._compose_layer_components(view, "metal",
                                                        [c.metal_comps if c else None
                                                         for c in children])

        # --- stage 4: contacts, buried straps, labels -----------------------
        P = len(art.pieces)
        Y = len(poly)
        metal_start = P + Y

        def map_item(k: int, item: int) -> int:
            child = children[k]
            child_pieces = len(child.pieces)
            if item < child_pieces:
                return piece_map[k][item]
            child_poly = len(child.view.layer("poly"))
            if item < child_pieces + child_poly:
                return P + poly_offsets[k] + (item - child_pieces)
            return (metal_start + metal_offsets[k]
                    + (item - child_pieces - child_poly))

        def conducting_candidates(region: Rect, strict: bool = False,
                                  include_metal: bool = True) -> List[int]:
            found = piece_candidates(region, strict=strict)
            for k in poly_box_index.near(region, strict=strict):
                source = sources[k]
                base = P + poly_offsets[k]
                for cid in source.probe("poly", region, strict=strict):
                    found.append(base + cid)
            if include_metal:
                for k in metal_box_index.near(region, strict=strict):
                    source = sources[k]
                    base = metal_start + metal_offsets[k]
                    for cid in source.probe("metal", region, strict=strict):
                        found.append(base + cid)
            found.sort()
            return found

        own_cond_layers = [layer for layer in (DL + ["poly", "metal"])
                          if own_view.layer(layer)]

        def compose_touch(layer: str, strict: bool, include_metal: bool):
            rects = view.layer(layer)
            offsets = view.offsets.get(layer, [0] * (len(sources) + 1))
            suspect: Set[int] = set(range(offsets[0], offsets[1]))
            for k, source in enumerate(sources[1:], 1):
                if not source.view.layer(layer):
                    continue
                box_k = src_bbox[k]
                offset = offsets[k]
                for j, other in enumerate(sources):
                    if j == k:
                        continue
                    if j == 0:
                        # Probe instance-side with the cell's own conducting
                        # rects near this instance.
                        if box_k is None:
                            continue
                        for own_layer in own_cond_layers:
                            own_index = own_view.index(own_layer)
                            own_rects = own_view.layer(own_layer)
                            for oid in own_index.query(box_k):
                                for cid in source.probe(layer, own_rects[oid],
                                                        strict=strict):
                                    suspect.add(offset + cid)
                        continue
                    box = src_bbox[j]
                    if box is None or box_k is None or not box_k.touches(box):
                        continue
                    for cid in source.probe(layer, box, strict=strict):
                        suspect.add(offset + cid)
            result: List[List[int]] = []
            for gid, rect in enumerate(rects):
                src = _source_of(offsets, gid)
                if src >= 1 and gid not in suspect:
                    child = children[src]
                    child_touch = (child.contact_touch if layer == "contact"
                                   else child.buried_touch)
                    local = gid - offsets[src]
                    touch = [map_item(src, item) for item in child_touch[local]]
                    if all(g >= 0 for g in touch):
                        result.append(touch)
                        continue
                found = conducting_candidates(rect, strict=strict,
                                              include_metal=include_metal)
                result.append(found)
            return result

        art.contact_touch = compose_touch("contact", strict=False,
                                          include_metal=True)
        art.buried_touch = compose_touch("buried", strict=True,
                                         include_metal=False)

        label_offsets = view.label_offsets
        # Which other sources could a block's labels land on?  Usually none.
        foreign_near = [[j for j in range(len(sources))
                         if j != k and src_bbox[j] is not None
                         and src_bbox[k] is not None
                         and src_bbox[k].touches(src_bbox[j])]
                        for k in range(len(sources))]
        for src in range(len(sources)):
            near = foreign_near[src]
            child = children[src]
            offset = label_offsets[src]
            for l_gid in range(offset, label_offsets[src + 1]):
                label = view.labels[l_gid]
                recompute = src == 0
                if not recompute and near:
                    position = label.position
                    for j in near:
                        if src_bbox[j].contains_point(position):
                            recompute = True
                            break
                hits: Optional[List[int]] = None
                if not recompute:
                    mapped_hits = [map_item(src, item)
                                   for item in child.label_hits[l_gid - offset]]
                    if all(g >= 0 for g in mapped_hits):
                        hits = mapped_hits
                if hits is None:
                    position = label.position
                    probe = Rect(position.x, position.y, position.x, position.y)
                    hits = []
                    for item in conducting_candidates(probe):
                        member_layer = self._item_layer(item, P, metal_start)
                        if label.layer and label.layer != member_layer and not (
                            label.layer in DL and member_layer == "diffusion"
                        ):
                            continue
                        hits.append(item)
                art.label_hits.append(sorted(hits))

        # --- stage 5: per-channel device data -------------------------------
        own_probe_layers = [layer for layer in (DL + ["poly", "implant"])
                           if own_view.layer(layer)]
        reverse_chan: List[int] = [-1] * len(art.channels)
        reverse_local: List[int] = [-1] * len(art.channels)
        for k in range(1, len(sources)):
            cmap = chan_map[k]
            for child_cid, gid in enumerate(cmap):
                if gid >= 0 and reverse_chan[gid] == -1:
                    reverse_chan[gid] = k
                    reverse_local[gid] = child_cid

        def implant_contains(region: Rect) -> bool:
            for k in implant_box_index.near(region):
                source = sources[k]
                for cid in source.probe("implant", region):
                    if source.global_rect("implant", cid).contains_rect(region):
                        return True
            return False

        # Per-block fast path: a block with no foreign device geometry and
        # no own-cell poly/diffusion/implant near it keeps every reused
        # channel's verdicts without any per-channel probing.
        block_isolated = [False] * len(sources)
        for k in range(1, len(sources)):
            box = src_bbox[k]
            if box is None:
                continue
            if any(j != k for j in device_box_index.near(box)):
                continue
            if any(own_view.index(layer).query(box)
                   for layer in own_probe_layers):
                continue
            block_isolated[k] = True

        for cid, channel in enumerate(art.channels):
            src = reverse_chan[cid]
            valid = src >= 1 and cid not in fresh_channels
            if valid and not block_isolated[src]:
                if any(j != src for j in device_box_index.near(channel)):
                    valid = False
                else:
                    # The cell's own poly/diffusion/implant can also supply a
                    # gate, terminal or implant cover; probe precisely (own
                    # extents often span the whole cell).
                    for layer in own_probe_layers:
                        if own_view.index(layer).query(channel):
                            valid = False
                            break
            gate_gid: Optional[int] = None
            terminals: Optional[List[int]] = None
            depletion = False
            if valid:
                child = children[src]
                child_cid = reverse_local[cid]
                child_gate = child.gates[child_cid]
                if child_gate is not None:
                    gate_gid = poly_offsets[src] + child_gate
                pmap = piece_map[src]
                mapped_terms = [pmap[p] for p in child.terminals[child_cid]]
                if all(g >= 0 for g in mapped_terms):
                    terminals = mapped_terms
                    depletion = child.depletion[child_cid]
                else:
                    valid = False
            if not valid:
                gate_gid = None
                candidates: List[int] = []
                for k in poly_box_index.near(channel):
                    source = sources[k]
                    base = poly_offsets[k]
                    for local in source.probe("poly", channel):
                        candidates.append(base + local)
                candidates.sort()
                for candidate in candidates:
                    rect = poly[candidate]
                    if rect.contains_rect(channel) or rect.overlaps(channel, strict=True):
                        gate_gid = candidate
                        break
                terminals = [g for g in piece_candidates(channel)
                             if not art.pieces[g].overlaps(channel, strict=True)]
                depletion = implant_contains(channel)
            art.gates.append(gate_gid)
            art.terminals.append(terminals)
            art.depletion.append(depletion)
        return self._store("extract", cell, orientation, art)

    @staticmethod
    def _item_layer(item: int, pieces_end: int, metal_start: int) -> str:
        if item < pieces_end:
            return "diffusion"
        if item < metal_start:
            return "poly"
        return "metal"

    def _compose_layer_components(self, view: _View, layer: str,
                                  child_comps: Sequence[Optional[List[List[int]]]]
                                  ) -> List[List[int]]:
        rects = view.layer(layer)
        offsets = view.offsets.get(layer, [0] * (len(view.sources) + 1))
        own_view = view.sources[0].view
        own_index = own_view.index(layer)
        block_comps: List[Sequence[Sequence[int]]] = [own_index.connected_components()]
        block_indexes: List[SpatialIndex] = [own_index]
        block_moves: List[Tuple[int, int]] = [(0, 0)]
        block_bboxes: List[Optional[Rect]] = [own_view.layer_bbox(layer)]
        for k, source in enumerate(view.sources[1:], 1):
            block_comps.append(child_comps[k])
            block_indexes.append(source.view.index(layer))
            block_moves.append((source.dx, source.dy))
            box = source.view.layer_bbox(layer)
            block_bboxes.append(None if box is None
                                else box.translated(source.dx, source.dy))
        cross_pairs = self._cross_block_pairs(offsets, rects, block_indexes,
                                              block_moves, block_bboxes)
        if not cross_pairs:
            components: List[List[int]] = [list(c) for c in block_comps[0]]
            for k in range(1, len(view.sources)):
                offset = offsets[k]
                if offset:
                    components.extend([m + offset for m in comp]
                                      for comp in block_comps[k])
                else:
                    components.extend(list(comp) for comp in block_comps[k])
            return components
        finder = self._compose_partition(len(rects), offsets, block_comps,
                                         cross_pairs)
        return finder.components()

    def _finish_extract(self, cell: Cell, art: _ExtractArtifact) -> ExtractedCircuit:
        """Node naming, device emission and port declaration (top level only).

        Anonymous node names (``n0``, ``n1``, ...) and device names follow
        the whole-chip group and channel enumeration, so this stage cannot
        be cached per cell — but it is linear, query-free bookkeeping over
        the composed artifact.
        """
        view = art.view
        P = len(art.pieces)
        Y = len(view.layer("poly"))
        M = len(view.layer("metal"))
        metal_start = P + Y
        finder = UnionFind(P + Y + M)
        for i, j in art.piece_edges:
            finder.union(i, j)
        for comp in art.poly_comps:
            for first, second in zip(comp, comp[1:]):
                finder.union(P + first, P + second)
        for comp in art.metal_comps:
            for first, second in zip(comp, comp[1:]):
                finder.union(metal_start + first, metal_start + second)
        for touching in art.contact_touch:
            _chain(finder, touching)
        for touching in art.buried_touch:
            _chain(finder, touching)

        first_hit: Dict[int, str] = {}
        supply_hit: Dict[int, str] = {}
        for l_gid, label in enumerate(view.labels):
            apply_label(label, art.label_hits[l_gid], finder.find,
                        supply_hit, first_hit)
        groups: Dict[int, List[int]] = {}
        for item in range(P + Y + M):
            groups.setdefault(finder.find(item), []).append(item)
        names, node_of_item = resolve_node_names(groups, supply_hit, first_hit)

        network = SwitchNetwork(cell.name)
        enhancement = depletion = 0
        device_channels: List[Rect] = []
        for cid, channel in enumerate(art.channels):
            gate_gid = art.gates[cid]
            gate_node = None if gate_gid is None else node_of_item[P + gate_gid]
            terminals = dedupe_nodes(art.terminals[cid], node_of_item)
            device = emit_transistor(network, cid, channel, gate_node,
                                     terminals, art.depletion[cid])
            if device is not None:
                device_channels.append(channel)
                if art.depletion[cid]:
                    depletion += 1
                else:
                    enhancement += 1

        from repro.extract.extractor import declare_ports

        declare_ports(network, cell.ports, set(names.values()), view.labels)
        # The item enumeration mirrors the flat extractor's builder items
        # exactly (diffusion pieces, then poly, then metal, same layer
        # names), so the parasitic annotation is identical whenever the
        # netlists are.
        items = ([("diffusion", rect) for rect in art.pieces]
                 + [("poly", rect) for rect in view.layer("poly")]
                 + [("metal", rect) for rect in view.layer("metal")])
        return ExtractedCircuit(
            cell_name=cell.name,
            network=network,
            node_names=sorted(set(names.values())),
            transistor_count=len(network.transistors),
            enhancement_count=enhancement,
            depletion_count=depletion,
            parasitics=annotate_parasitics(
                ParasiticModel(self.technology), items, node_of_item,
                network.transistors, device_channels),
        )

    # -- metrics ------------------------------------------------------------

    def _areas(self, cell: Cell, orientation: Orientation) -> Dict[str, int]:
        """Per-layer merged mask areas, identical to the flat computation.

        Merged area is additive across sources whose layer bounding boxes do
        not share interior (abutting edges have measure zero); where source
        extents genuinely overlap, the layer falls back to a global sweep.
        """
        hit = self._cached("areas", cell, orientation)
        if hit is not None:
            return hit
        view = self._view(cell, orientation)
        child_areas = [None] + [self._areas(s.cell, s.orientation)
                                for s in view.sources[1:]]
        areas: Dict[str, int] = {}
        for layer, rects in view.rects.items():
            boxes = []
            for source in view.sources:
                box = source.view.layer_bbox(layer)
                boxes.append(None if box is None
                             else box.translated(source.dx, source.dy))
            disjoint = True
            for i in range(len(boxes)):
                if boxes[i] is None:
                    continue
                for j in range(i + 1, len(boxes)):
                    if boxes[j] is not None and boxes[i].overlaps(boxes[j], strict=True):
                        disjoint = False
                        break
                if not disjoint:
                    break
            if disjoint:
                total = merged_area(view.sources[0].view.layer(layer))
                for k in range(1, len(view.sources)):
                    total += child_areas[k].get(layer, 0)
                areas[layer] = total
            else:
                areas[layer] = merged_area(rects)
        return self._store("areas", cell, orientation, areas)


# -- convenience wrappers -----------------------------------------------------


def hier_check_cell(cell: Cell, technology: Technology) -> List[DrcViolation]:
    """One-shot hierarchical DRC (build a :class:`HierAnalyzer` to cache)."""
    return HierAnalyzer(technology).drc(cell)


def hier_extract_cell(cell: Cell, technology: Technology) -> ExtractedCircuit:
    """One-shot hierarchical extraction."""
    return HierAnalyzer(technology).extract(cell)


def hier_measure_cell(cell: Cell, technology: Technology) -> DesignMetrics:
    """One-shot hierarchical metrics."""
    return HierAnalyzer(technology).measure(cell)
