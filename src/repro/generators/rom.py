"""ROM generator: an address decoder plus a programmed transistor matrix.

"Regular blocks, such as memories and PLAs, are programmed for specific
functions" — the ROM is programmed by its contents: a transistor is present
at (word, bit) exactly where the stored bit is 1.  The generator accepts the
contents as a list of integers and produces the decoder, the cell matrix and
the bit-line pullups/buffers, reporting area and transistor count for the
E3 parameter sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.lang.parameters import Parameter, ParameterizedCell
from repro.layout.cell import Cell
from repro.generators.decoder import DecoderGenerator


@dataclass
class RomReport:
    words: int
    bits_per_word: int
    stored_ones: int
    transistors: int
    width: int
    height: int

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def bits(self) -> int:
        return self.words * self.bits_per_word


class RomGenerator(ParameterizedCell):
    """Generate a mask-programmed ROM from its contents."""

    name_prefix = "rom"

    bits_per_word = Parameter(kind=int, default=8, minimum=1, maximum=64)
    # 10 lambda is the smallest pitch where a contacted bit cell clears the
    # Mead & Conway spacing/enclosure rules (see the PLA generator).
    pitch = Parameter(kind=int, default=10, minimum=10)

    def __init__(self, technology, contents: Sequence[int], **parameters):
        super().__init__(technology, **parameters)
        self.contents: List[int] = list(contents)
        if not self.contents:
            raise ValueError("ROM contents must not be empty")
        limit = 2 ** self.bits_per_word
        for index, word in enumerate(self.contents):
            if not 0 <= word < limit:
                raise ValueError(
                    f"word {index} value {word} does not fit in {self.bits_per_word} bits"
                )
        self.report: Optional[RomReport] = None

    def cell_name(self) -> str:
        return f"rom_{len(self.contents)}x{self.bits_per_word}"

    def _cache_key_extra(self) -> tuple:
        return (self.cell_name(), tuple(self.contents))

    @property
    def address_bits(self) -> int:
        return max(1, (len(self.contents) - 1).bit_length())

    # -- functional model ---------------------------------------------------------

    def read(self, address: int) -> int:
        """The stored word at ``address`` (0 beyond the programmed contents)."""
        if address < 0:
            raise IndexError("negative ROM address")
        if address >= len(self.contents):
            return 0
        return self.contents[address]

    # -- layout ----------------------------------------------------------------------

    def build(self) -> Cell:
        pitch = self.pitch
        words = len(self.contents)
        bits = self.bits_per_word
        cell = Cell(self.cell_name())

        decoder = DecoderGenerator(self.technology, address_bits=self.address_bits,
                                   pitch=pitch)
        decoder_cell = decoder.cell()
        cell.place(decoder_cell, 0, 0, name="decoder")
        decoder_width = decoder_cell.width

        from repro.lang.parameters import shared_brick

        cell_programmed = shared_brick(self.technology, f"rom_bit_1_{pitch}",
                                       lambda: self._bit_cell(True))
        cell_blank = shared_brick(self.technology, f"rom_bit_0_{pitch}",
                                  lambda: self._bit_cell(False))
        pullup = shared_brick(self.technology, f"rom_blpullup_{pitch}",
                              self._bitline_pullup)

        stored_ones = 0
        matrix_x0 = decoder_width + pitch
        for word in range(words):
            row_y = word * pitch
            for bit in range(bits):
                x = matrix_x0 + bit * pitch
                is_one = (self.contents[word] >> (bits - 1 - bit)) & 1
                chosen = cell_programmed if is_one else cell_blank
                if is_one:
                    stored_ones += 1
                cell.place(chosen, x, row_y, name=f"bit_{word}_{bit}")

        # Bit-line pullups and data ports along the top.
        matrix_top = 2 ** self.address_bits * pitch
        for bit in range(bits):
            x = matrix_x0 + bit * pitch
            cell.place(pullup, x, matrix_top, name=f"bl_pullup_{bit}")
            cell.add_port(f"data{bit}", Point(x + pitch // 2, matrix_top + pitch - 1),
                          "metal", "output")

        # Address ports re-exported from the decoder.
        for bit in range(self.address_bits):
            port = decoder_cell.port(f"addr{bit}")
            cell.add_port(f"addr{bit}", port.position, port.layer, "input")

        bbox = cell.bbox()
        self.report = RomReport(
            words=words,
            bits_per_word=bits,
            stored_ones=stored_ones,
            transistors=stored_ones + (decoder.report.transistors if decoder.report else 0) + bits,
            width=0 if bbox is None else bbox.width,
            height=0 if bbox is None else bbox.height,
        )
        return cell

    # -- brick cells --------------------------------------------------------------------

    def _bit_cell(self, programmed: bool) -> Cell:
        pitch = self.pitch
        c = pitch // 2
        suffix = "1" if programmed else "0"
        cell = Cell(f"rom_bit_{suffix}_{pitch}")
        # Word line: horizontal poly.  Bit line: vertical metal.
        cell.add_rect("poly", Rect(0, c - 1, pitch, c + 1))
        cell.add_rect("metal", Rect(c - 1, 0, c + 3, pitch))
        if programmed:
            # Diffusion tops out flush with the word-line poly (one source
            # terminal); the strap contact abuts the poly and sits a lambda
            # inside the bit-line metal and the diffusion.
            cell.add_rect("diffusion", Rect(c - 1, c - 4, c + 3, c + 1))
            cell.add_rect("contact", Rect(c, c - 3, c + 2, c - 1))
        return cell

    def _bitline_pullup(self) -> Cell:
        pitch = self.pitch
        c = pitch // 2
        cell = Cell(f"rom_blpullup_{pitch}")
        cell.add_rect("diffusion", Rect(c - 2, 2, c + 2, 7))
        cell.add_rect("poly", Rect(c - 3, 4, c + 3, 8))
        cell.add_rect("implant", Rect(c - 4, 3, c + 4, 9))
        cell.add_rect("metal", Rect(c - 1, 0, c + 3, 4))
        return cell
