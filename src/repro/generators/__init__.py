"""Regular-structure generators: the microscopic silicon compilers.

"There is also an increasing necessity for program descriptions of
sub-structures ... when regular blocks, such as memories and PLAs, are
programmed for specific functions."  Each generator here takes a functional
description (a cover, a truth table, stored data, a word width) and emits a
layout cell for the corresponding regular structure, together with the
bookkeeping (port lists, transistor counts, area) the chip assembler and the
experiment harness need.
"""

from repro.generators.pla import PlaGenerator, PlaStyle
from repro.generators.rom import RomGenerator
from repro.generators.ram import RamGenerator, SramBitCell
from repro.generators.decoder import DecoderGenerator
from repro.generators.datapath import DatapathGenerator, DatapathColumn
from repro.generators.fsm_layout import FsmLayoutGenerator

__all__ = [
    "PlaGenerator",
    "PlaStyle",
    "RomGenerator",
    "RamGenerator",
    "SramBitCell",
    "DecoderGenerator",
    "DatapathGenerator",
    "DatapathColumn",
    "FsmLayoutGenerator",
]
