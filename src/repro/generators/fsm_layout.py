"""FSM-to-layout compiler: state register + next-state/output PLA.

This is the smallest complete example of the behavioural definition of
silicon compilation: a symbolic finite-state machine (behaviour) is encoded,
minimised and realised as a PLA with a register column feeding the state
bits back — compiled to layout with no manual physical design at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geometry.point import Point
from repro.lang.parameters import Parameter, ParameterizedCell
from repro.layout.cell import Cell
from repro.cells.registers import RegisterBitCell
from repro.generators.pla import PlaGenerator
from repro.logic.fsm import FSM, StateEncoding, encode_fsm


@dataclass
class FsmLayoutReport:
    states: int
    state_bits: int
    pla_terms: int
    transistors: int
    width: int
    height: int

    @property
    def area(self) -> int:
        return self.width * self.height


class FsmLayoutGenerator(ParameterizedCell):
    """Compile a symbolic FSM into a PLA-plus-register layout block."""

    name_prefix = "fsm"

    encoding = Parameter(kind=str, default="binary",
                         choices=["binary", "gray", "one_hot"])
    minimize_method = Parameter(kind=str, default="exact",
                                choices=["exact", "heuristic", "none"])

    def __init__(self, technology, fsm: FSM, **parameters):
        super().__init__(technology, **parameters)
        self.fsm = fsm
        self.encoded = encode_fsm(fsm, StateEncoding(self.encoding))
        self.report: Optional[FsmLayoutReport] = None

    def cell_name(self) -> str:
        return f"fsm_{self.fsm.name}_{self.encoding}"

    def _cache_key_extra(self) -> tuple:
        return (
            self.cell_name(),
            tuple((cube.inputs, cube.outputs) for cube in self.encoded.cover.cubes),
        )

    def build(self) -> Cell:
        cell = Cell(self.cell_name())

        pla_generator = PlaGenerator(
            self.technology,
            self.encoded.cover,
            name=f"{self.fsm.name}_pla",
            minimize_cover=self.minimize_method != "none",
            minimize_method=self.minimize_method if self.minimize_method != "none" else "exact",
        )
        pla_cell = pla_generator.cell()
        pla_report = pla_generator.report

        register_bit = RegisterBitCell(self.technology).cell()

        # PLA on the left; state register column on the right, one bit per
        # state variable, feeding the next-state outputs back to the
        # present-state inputs.
        cell.place(pla_cell, 0, 0, name="pla")
        register_x = pla_cell.width + 10
        for index in range(self.encoded.num_state_bits):
            instance = cell.place(register_bit, register_x, index * register_bit.height,
                                  name=f"state_{index}")
            # Feedback wiring: metal from the PLA's next-state output port to
            # the register input, and from the register output back to the
            # present-state input port.
            next_name = f"{self.fsm.name}_n{index}"
            present_name = f"{self.fsm.name}_s{index}"
            if pla_cell.has_port(next_name):
                source = pla_cell.port(next_name).position
                target = instance.transform.apply(register_bit.port("in").position)
                cell.add_wire("metal", [source, Point(source.x, target.y), target], 3)
            if pla_cell.has_port(present_name):
                back_target = pla_cell.port(present_name).position
                back_source = instance.transform.apply(register_bit.port("out").position)
                # The return rail runs 6 lambda below the input port row so it
                # clears the register gnd rails and the next-state drops by
                # the full metal spacing.
                cell.add_wire("metal",
                              [back_source, Point(back_source.x, back_target.y - 6),
                               Point(back_target.x, back_target.y - 6), back_target], 3)

        # Re-export the machine's primary inputs and outputs.
        for input_name in self.fsm.inputs:
            if pla_cell.has_port(input_name):
                port = pla_cell.port(input_name)
                cell.add_port(input_name, port.position, port.layer, "input")
        for output_name in self.fsm.outputs:
            if pla_cell.has_port(output_name):
                port = pla_cell.port(output_name)
                cell.add_port(output_name, port.position, port.layer, "output")
        cell.add_port("phi1", Point(register_x, 0), "poly", "input")
        cell.add_port("phi2", Point(register_x + 4, 0), "poly", "input")

        bbox = cell.bbox()
        self.report = FsmLayoutReport(
            states=self.fsm.num_states,
            state_bits=self.encoded.num_state_bits,
            pla_terms=pla_report.terms if pla_report else 0,
            transistors=(pla_report.total_transistors if pla_report else 0)
            + 6 * self.encoded.num_state_bits,
            width=0 if bbox is None else bbox.width,
            height=0 if bbox is None else bbox.height,
        )
        return cell
