"""Bit-sliced datapath generator.

The datapath compiler embodies the structural/physical unification the paper
attributes to the Mead design style: a processor datapath is a rectangular
array in which every *row* is one bit of the word and every *column* is one
function unit (register, ALU, shifter, bus coupler).  Data flows
horizontally in metal and control flows vertically in poly, so the whole
array composes by abutment with essentially no routing — the wiring
management argument of the paper, measured by experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.lang.parameters import Parameter, ParameterizedCell
from repro.layout.cell import Cell
from repro.cells.registers import RegisterBitCell
from repro.cells.gates import PassTransistorCell


#: Known column kinds and the number of vertical control wires each needs.
_COLUMN_KINDS = {
    "register": 2,    # phi1, phi2
    "adder": 3,       # carry control, invert, enable
    "shifter": 2,     # shift left, shift right
    "mux": 2,         # select, enable
    "bus": 1,         # precharge / pull control
    "constant": 1,    # emit constant
}

#: X offset of each control wire within its column, chosen per column kind so
#: every wire either lands exactly on the gate poly it drives (touching =
#: connected) or clears all foreign poly and diffusion by the full spacing
#: rule — a wire one lambda off a gate is a short waiting for mask misalignment.
_CONTROL_WIRE_OFFSETS = {
    "register": (1, 5),
    "adder": (1, 5, 45),
    "shifter": (1, 5),
    "mux": (1, 5),
    "bus": (1,),
    "constant": (2,),
}


@dataclass(frozen=True)
class DatapathColumn:
    """One function-unit column of the datapath."""

    kind: str
    name: str
    parameters: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _COLUMN_KINDS:
            raise ValueError(
                f"unknown datapath column kind {self.kind!r}; "
                f"expected one of {sorted(_COLUMN_KINDS)}"
            )

    @property
    def control_wires(self) -> int:
        return _COLUMN_KINDS[self.kind]


@dataclass
class DatapathReport:
    bits: int
    columns: int
    control_wires: int
    transistors: int
    width: int
    height: int

    @property
    def area(self) -> int:
        return self.width * self.height


class DatapathGenerator(ParameterizedCell):
    """Generate a bit-sliced datapath from a column list and a word width."""

    name_prefix = "datapath"

    bits = Parameter(kind=int, default=8, minimum=1, maximum=64)

    def __init__(self, technology, columns: Sequence[DatapathColumn], **parameters):
        super().__init__(technology, **parameters)
        if not columns:
            raise ValueError("a datapath needs at least one column")
        self.columns: List[DatapathColumn] = list(columns)
        self.report: Optional[DatapathReport] = None

    def cell_name(self) -> str:
        kinds = "_".join(column.kind[0] for column in self.columns)
        return f"datapath_{self.bits}b_{kinds}"

    def _cache_key_extra(self) -> tuple:
        return (self.cell_name(),
                tuple((column.kind, column.name) for column in self.columns))

    # -- layout -----------------------------------------------------------------------

    def build(self) -> Cell:
        cell = Cell(self.cell_name())
        bit_slices: List[Cell] = [self._column_bit_cell(column) for column in self.columns]
        row_height = max(slice_cell.height for slice_cell in bit_slices)
        total_transistors = 0

        x_position = 0
        column_x: List[int] = []
        for column, slice_cell in zip(self.columns, bit_slices):
            column_x.append(x_position)
            for bit in range(self.bits):
                cell.place(slice_cell, x_position, bit * row_height,
                           name=f"{column.name}_b{bit}")
            total_transistors += self.bits * self._slice_transistors(column)
            # Vertical control wires in poly over the column.
            for wire_index in range(column.control_wires):
                wire_x = x_position + _CONTROL_WIRE_OFFSETS[column.kind][wire_index]
                cell.add_wire("poly", [Point(wire_x, 0),
                                       Point(wire_x, self.bits * row_height)], 2)
                cell.add_port(f"{column.name}_ctl{wire_index}", Point(wire_x, 0),
                              "poly", "input")
            x_position += slice_cell.width + 4

        # Horizontal data buses in metal along each bit row (left/right edges).
        total_width = x_position
        for bit in range(self.bits):
            y = bit * row_height + row_height // 2
            cell.add_wire("metal", [Point(0, y), Point(total_width, y)], 3)
            cell.add_port(f"bus_in{bit}", Point(0, y), "metal", "input")
            cell.add_port(f"bus_out{bit}", Point(total_width - 1, y), "metal", "output")

        bbox = cell.bbox()
        self.report = DatapathReport(
            bits=self.bits,
            columns=len(self.columns),
            control_wires=sum(column.control_wires for column in self.columns),
            transistors=total_transistors,
            width=0 if bbox is None else bbox.width,
            height=0 if bbox is None else bbox.height,
        )
        return cell

    # -- per-column leaf cells -------------------------------------------------------------

    def _column_bit_cell(self, column: DatapathColumn) -> Cell:
        from repro.lang.parameters import shared_brick

        if column.kind == "register":
            return RegisterBitCell(self.technology).cell()
        if column.kind == "adder":
            return shared_brick(self.technology, "dp_adder_bit", self._adder_bit)
        if column.kind == "shifter":
            return shared_brick(self.technology, "dp_shifter_bit", self._shifter_bit)
        if column.kind == "mux":
            return shared_brick(self.technology, "dp_mux_bit", self._mux_bit)
        if column.kind == "bus":
            return shared_brick(self.technology, "dp_bus_bit", self._bus_bit)
        if column.kind == "constant":
            value = column.parameters.get("value", 0)
            return shared_brick(self.technology, f"dp_const_{value}",
                                lambda: self._constant_bit(value))
        raise AssertionError(f"unhandled column kind {column.kind}")

    def _slice_transistors(self, column: DatapathColumn) -> int:
        return {
            "register": 6,
            "adder": 14,
            "shifter": 3,
            "mux": 4,
            "bus": 2,
            "constant": 1,
        }[column.kind]

    def _adder_bit(self) -> Cell:
        """A carry-chain adder bit in the Mead & Conway style.

        Represented as a compact block: carry propagate/generate gates on the
        left, the sum gate on the right, carry running vertically in
        diffusion so adjacent bits connect by abutment.
        """
        cell = Cell("dp_adder_bit")
        width, height = 44, 45
        cell.add_rect("metal", Rect(0, 0, width, 4))
        cell.add_rect("metal", Rect(0, height - 4, width, height))
        # Carry chain diffusion running the full height near the left edge.
        cell.add_rect("diffusion", Rect(4, 0, 8, height))
        # Propagate / generate gates.
        for index, x in enumerate((12, 20, 28)):
            cell.add_rect("diffusion", Rect(x, 6, x + 4, height - 10))
            cell.add_rect("poly", Rect(x - 2, 14 + 4 * index, x + 6, 16 + 4 * index))
            cell.add_rect("implant", Rect(x - 1, height - 16, x + 5, height - 10))
            cell.add_rect("buried", Rect(x, height - 20, x + 4, height - 16))
        # Sum stage.  The output strap metal clears the bit's supply rails by
        # the full metal spacing, with the contact a lambda inside it.
        cell.add_rect("diffusion", Rect(36, 6, 40, height - 10))
        cell.add_rect("poly", Rect(34, 20, 42, 22))
        cell.add_rect("implant", Rect(35, height - 16, 41, height - 10))
        cell.add_rect("contact", Rect(37, 8, 39, 10))
        cell.add_rect("metal", Rect(36, 7, 40, 11))
        cell.add_port("a", Point(13, 1), "poly", "input")
        cell.add_port("b", Point(21, 1), "poly", "input")
        cell.add_port("carry_in", Point(6, 1), "diffusion", "input")
        cell.add_port("carry_out", Point(6, height - 1), "diffusion", "output")
        cell.add_port("sum", Point(38, 8), "metal", "output")
        return cell

    def _shifter_bit(self) -> Cell:
        """A shift-array bit: pass transistors steering to the neighbour rows."""
        pass_cell = PassTransistorCell(self.technology).cell()
        cell = Cell("dp_shifter_bit")
        cell.place(pass_cell, 0, 4, name="left")
        # A full diffusion spacing between the two pass transistors.
        cell.place(pass_cell, pass_cell.width + 3, 4, name="right")
        width = 2 * pass_cell.width + 5
        cell.add_rect("metal", Rect(0, 0, width, 3))
        cell.add_port("in", Point(1, 5), "diffusion", "input")
        cell.add_port("out", Point(width - 1, 5), "diffusion", "output")
        return cell

    def _mux_bit(self) -> Cell:
        """A two-way selector bit built from two pass transistors."""
        pass_cell = PassTransistorCell(self.technology).cell()
        cell = Cell("dp_mux_bit")
        cell.place(pass_cell, 0, 2, name="a_path")
        cell.place(pass_cell, 0, pass_cell.height + 6, name="b_path")
        width = pass_cell.width
        join_x = width - 1
        cell.add_wire("diffusion",
                      [Point(join_x, 4), Point(join_x, pass_cell.height + 8)], 2)
        cell.add_port("a", Point(1, 4), "diffusion", "input")
        cell.add_port("b", Point(1, pass_cell.height + 8), "diffusion", "input")
        cell.add_port("out", Point(join_x, pass_cell.height + 8), "diffusion", "output")
        return cell

    def _bus_bit(self) -> Cell:
        """A bus coupler: a pass transistor onto the shared metal bus."""
        pass_cell = PassTransistorCell(self.technology).cell()
        cell = Cell("dp_bus_bit")
        cell.place(pass_cell, 0, 4, name="coupler")
        cell.add_rect("metal", Rect(0, 0, pass_cell.width, 3))
        cell.add_port("bus", Point(1, 1), "metal", "inout")
        cell.add_port("node", Point(pass_cell.width - 1, 6), "diffusion", "inout")
        return cell

    def _constant_bit(self, value: int) -> Cell:
        """A constant bit: a pullup (1) or a ground tie (0)."""
        cell = Cell(f"dp_const_{value}")
        cell.add_rect("metal", Rect(0, 0, 12, 3))
        if value:
            cell.add_rect("diffusion", Rect(4, 3, 8, 14))
            cell.add_rect("poly", Rect(3, 6, 9, 8))
            cell.add_rect("implant", Rect(2, 5, 10, 9))
        else:
            cell.add_rect("diffusion", Rect(4, 3, 8, 10))
            cell.add_rect("contact", Rect(5, 4, 7, 6))
        cell.add_port("out", Point(6, 12), "diffusion", "output")
        return cell
