"""Address decoder generator (a NOR decoder, one select line per word).

The decoder is structurally the AND plane of a PLA with every minterm
present: ``2**address_bits`` rows, each with transistors on the complement
pattern of its address.  Memories (ROM, RAM) instantiate it for word-line
selection; it is also a useful regular structure on its own for experiment
E6 (hierarchy leverage of a full binary tree of select lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.lang.parameters import Parameter, ParameterizedCell
from repro.layout.cell import Cell


@dataclass
class DecoderReport:
    address_bits: int
    select_lines: int
    transistors: int
    width: int
    height: int

    @property
    def area(self) -> int:
        return self.width * self.height


class DecoderGenerator(ParameterizedCell):
    """Generate a ``2**n``-way NOR address decoder."""

    name_prefix = "decoder"

    address_bits = Parameter(kind=int, default=3, minimum=1, maximum=10)
    # 10 lambda is the smallest pitch where a contacted crosspoint clears the
    # Mead & Conway spacing/enclosure rules (see the PLA generator).
    pitch = Parameter(kind=int, default=10, minimum=10)

    def __init__(self, technology, **parameters):
        super().__init__(technology, **parameters)
        self.report: Optional[DecoderReport] = None

    def build(self) -> Cell:
        n = self.address_bits
        pitch = self.pitch
        words = 2 ** n
        cell = Cell(self.cell_name())

        from repro.lang.parameters import shared_brick

        empty = shared_brick(self.technology, f"dec_xp_o_{pitch}",
                             lambda: self._crosspoint(False))
        connected = shared_brick(self.technology, f"dec_xp_x_{pitch}",
                                 lambda: self._crosspoint(True))
        pullup = shared_brick(self.technology, f"dec_pullup_{pitch}", self._pullup)

        transistors = 0
        for word in range(words):
            row_y = word * pitch
            cell.place(pullup, 0, row_y, name=f"pullup_{word}")
            for bit in range(n):
                bit_value = (word >> (n - 1 - bit)) & 1
                for polarity, column_offset in ((1, 0), (0, 1)):
                    x = pitch + (2 * bit + column_offset) * pitch
                    # Select line goes low unless this row's address matches:
                    # place a pulldown on the line of the *wrong* polarity.
                    is_connected = polarity != bit_value
                    chosen = connected if is_connected else empty
                    if is_connected:
                        transistors += 1
                    cell.place(chosen, x, row_y, name=f"xp_{word}_{bit}_{polarity}")
            # Word-line (select) port on the right edge.
            cell.add_port(f"select{word}",
                          Point(pitch + 2 * n * pitch - 1, row_y + pitch // 2),
                          "metal", "output")

        # Address input ports along the bottom (true column of each bit).
        for bit in range(n):
            x = pitch + 2 * bit * pitch + pitch // 2
            cell.add_port(f"addr{bit}", Point(x, 0), "poly", "input")

        bbox = cell.bbox()
        self.report = DecoderReport(
            address_bits=n,
            select_lines=words,
            transistors=transistors + words,
            width=0 if bbox is None else bbox.width,
            height=0 if bbox is None else bbox.height,
        )
        return cell

    def _crosspoint(self, connected: bool) -> Cell:
        pitch = self.pitch
        c = pitch // 2
        suffix = "x" if connected else "o"
        cell = Cell(f"dec_xp_{suffix}_{pitch}")
        cell.add_rect("poly", Rect(c - 1, 0, c + 1, pitch))
        cell.add_rect("metal", Rect(0, c - 2, pitch, c + 2))
        if connected:
            # The strap contact abuts the gate poly and is enclosed by a full
            # lambda of metal and diffusion (same brick as the PLA AND plane).
            cell.add_rect("diffusion", Rect(c - 4, c - 2, c + 3, c + 2))
            cell.add_rect("contact", Rect(c - 3, c - 1, c - 1, c + 1))
        return cell

    def _pullup(self) -> Cell:
        pitch = self.pitch
        c = pitch // 2
        cell = Cell(f"dec_pullup_{pitch}")
        cell.add_rect("diffusion", Rect(2, c - 2, pitch - 3, c + 2))
        cell.add_rect("poly", Rect(3, c - 3, 7, c + 3))
        cell.add_rect("implant", Rect(1, c - 5, 9, c + 5))
        cell.add_rect("metal", Rect(pitch - 3, c - 2, pitch, c + 2))
        return cell
