"""The PLA generator.

The programmed logic array is the archetypal regular structure of the
silicon-compilation argument: a fixed floorplan (input drivers, AND plane,
OR plane, output buffers) whose *personality* — which crosspoints carry a
transistor — is computed from a logic cover.  The same program therefore
produces a correct layout for any set of logic equations, and its area is a
simple function of (inputs, product terms, outputs), which experiment E3
sweeps and experiment E4 ties back to logic minimisation.

Electrically this is the classic NMOS NOR-NOR PLA: input drivers produce the
true and complement of every input on vertical poly columns; each product
term is a horizontal row wire pulled up by a depletion load and pulled down
by a crosspoint transistor wherever the term must be false; the OR plane
works the same way with terms as inputs and (inverted) outputs as rows, and
the output buffers restore polarity.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Union

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.lang.parameters import Parameter, ParameterizedCell
from repro.layout.cell import Cell
from repro.logic.cube import Cover
from repro.logic.minimize import minimize
from repro.logic.truth_table import TruthTable
from repro.technology.technology import Technology


class PlaStyle(Enum):
    """Crosspoint pitch styles (an area/robustness trade-off)."""

    COMPACT = "compact"    # 10 lambda pitch (the DRC-clean minimum)
    RELAXED = "relaxed"    # 12 lambda pitch


# A crosspoint needs contact (2) + enclosure (2) + poly (2) + terminal (1)
# = 7 lambda of diffusion per pitch, and S.D.D=3 to the next column's, so
# 10 lambda is the smallest legal pitch; "relaxed" adds a lambda of slack
# on every constraint.
_PITCH_OF_STYLE = {PlaStyle.COMPACT: 10, PlaStyle.RELAXED: 12}


@dataclass
class PlaReport:
    """Size accounting produced alongside the layout."""

    inputs: int
    outputs: int
    terms: int
    crosspoint_transistors: int
    pullup_transistors: int
    driver_transistors: int
    width: int
    height: int

    @property
    def total_transistors(self) -> int:
        return self.crosspoint_transistors + self.pullup_transistors + self.driver_transistors

    @property
    def area(self) -> int:
        return self.width * self.height


class PlaGenerator(ParameterizedCell):
    """Generate an NMOS PLA from a :class:`Cover` or :class:`TruthTable`.

    Parameters
    ----------
    minimize_cover:
        Run the logic minimiser before building (the E4 ablation switch).
    style:
        Crosspoint pitch style.
    """

    name_prefix = "pla"

    minimize_cover = Parameter(kind=bool, default=True)
    minimize_method = Parameter(kind=str, default="exact",
                                choices=["exact", "heuristic", "none"])
    style = Parameter(kind=str, default="compact", choices=["compact", "relaxed"])

    def __init__(self, technology: Technology, source: Union[Cover, TruthTable],
                 name: Optional[str] = None, **parameters):
        super().__init__(technology, **parameters)
        if isinstance(source, TruthTable):
            self._cover = source.to_cover()
        else:
            self._cover = source.copy()
        self._explicit_name = name
        self.report: Optional[PlaReport] = None

    # -- naming -----------------------------------------------------------------

    def cell_name(self) -> str:
        if self._explicit_name:
            return self._explicit_name
        return (
            f"pla_i{self._cover.num_inputs}_o{self._cover.num_outputs}"
            f"_p{self._cover.num_terms}"
        )

    def _cache_key_extra(self) -> tuple:
        return (
            self.cell_name(),
            tuple((cube.inputs, cube.outputs) for cube in self._cover.cubes),
            tuple(self._cover.input_names),
            tuple(self._cover.output_names),
        )

    # -- the personality --------------------------------------------------------

    def personality(self) -> Cover:
        """The cover actually laid out (after optional minimisation)."""
        if self.minimize_cover and self.minimize_method != "none":
            return minimize(self._cover, self.minimize_method)
        return self._cover.copy()

    # -- layout -------------------------------------------------------------------

    def build(self) -> Cell:
        cover = self.personality()
        pitch = _PITCH_OF_STYLE[PlaStyle(self.style)]
        num_inputs = cover.num_inputs
        num_outputs = cover.num_outputs
        num_terms = max(1, cover.num_terms)

        cell = Cell(self.cell_name())

        # Sub-cells: the distinct crosspoint/periphery bricks, shared across
        # all PLA instances built in the same technology.
        from repro.lang.parameters import shared_brick

        and_empty = shared_brick(self.technology, f"pla_and_o_{pitch}",
                                 lambda: self._and_crosspoint(False, pitch))
        and_connected = shared_brick(self.technology, f"pla_and_x_{pitch}",
                                     lambda: self._and_crosspoint(True, pitch))
        or_empty = shared_brick(self.technology, f"pla_or_o_{pitch}",
                                lambda: self._or_crosspoint(False, pitch))
        or_connected = shared_brick(self.technology, f"pla_or_x_{pitch}",
                                    lambda: self._or_crosspoint(True, pitch))
        driver = shared_brick(self.technology, f"pla_driver_{pitch}",
                              lambda: self._input_driver(pitch))
        pullup = shared_brick(self.technology, f"pla_pullup_{pitch}",
                              lambda: self._term_pullup(pitch))
        output_buffer = shared_brick(self.technology, f"pla_outbuf_{pitch}",
                                     lambda: self._output_buffer(pitch))

        driver_height = driver.height

        # The pullup's drain strap ends at pitch + 2 exactly; start the AND
        # plane there so the strap abuts the first term-row metal.  (The
        # pullup *bbox* starts at x=3, so its width is not the right offset.)
        and_x0 = pitch + 2
        and_y0 = driver_height
        and_width = 2 * num_inputs * pitch
        or_x0 = and_x0 + and_width + pitch  # one pitch of separation

        crosspoint_transistors = 0

        # AND plane and OR plane rows (one per product term).
        for term_index, cube in enumerate(cover.cubes):
            row_y = and_y0 + term_index * pitch
            cell.place(pullup, 0, row_y, name=f"pullup_{term_index}")
            for input_index in range(num_inputs):
                literal = cube.inputs[input_index]
                # Column order: true line then complement line for each input.
                for polarity, column_offset in (("1", 0), ("0", 1)):
                    x = and_x0 + (2 * input_index + column_offset) * pitch
                    # A '1' literal means the term must go low when the input
                    # is 0, i.e. a transistor on the *complement* column; a
                    # '0' literal puts the transistor on the true column.
                    connected = (literal == "1" and polarity == "0") or (
                        literal == "0" and polarity == "1"
                    )
                    chosen = and_connected if connected else and_empty
                    if connected:
                        crosspoint_transistors += 1
                    cell.place(chosen, x, row_y,
                               name=f"and_{term_index}_{input_index}_{polarity}")
            for output_index in range(num_outputs):
                x = or_x0 + output_index * pitch
                connected = cube.outputs[output_index] == "1"
                chosen = or_connected if connected else or_empty
                if connected:
                    crosspoint_transistors += 1
                cell.place(chosen, x, row_y, name=f"or_{term_index}_{output_index}")

        # Input drivers along the bottom of the AND plane.
        for input_index in range(num_inputs):
            x = and_x0 + 2 * input_index * pitch
            instance = cell.place(driver, x, 0, name=f"driver_{input_index}")
            cell.add_port(cover.input_names[input_index],
                          instance.transform.apply(driver.port("in").position),
                          "poly", "input")

        # Output buffers along the bottom of the OR plane.
        for output_index in range(num_outputs):
            x = or_x0 + output_index * pitch
            instance = cell.place(output_buffer, x, 0, name=f"outbuf_{output_index}")
            cell.add_port(cover.output_names[output_index],
                          instance.transform.apply(output_buffer.port("out").position),
                          "metal", "output")

        # Supply rails along the left edge.
        total_height = and_y0 + num_terms * pitch + pitch
        cell.add_rect("metal", Rect(0, and_y0 - pitch // 2, 3, total_height))
        cell.add_port("vdd", Point(1, total_height - 1), "metal", "supply")
        cell.add_port("gnd", Point(1, and_y0 - pitch // 2 + 1), "metal", "supply")

        bbox = cell.bbox()
        self.report = PlaReport(
            inputs=num_inputs,
            outputs=num_outputs,
            terms=cover.num_terms,
            crosspoint_transistors=crosspoint_transistors,
            pullup_transistors=cover.num_terms + num_outputs,
            driver_transistors=4 * num_inputs + 2 * num_outputs,
            width=0 if bbox is None else bbox.width,
            height=0 if bbox is None else bbox.height,
        )
        self._personality_cache = cover
        return cell

    # -- functional model -------------------------------------------------------------

    def evaluate(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Evaluate the PLA's logical function (for verification against RTL)."""
        return self.personality().evaluate(assignment)

    # -- brick cells -----------------------------------------------------------------------

    def _and_crosspoint(self, connected: bool, pitch: int = 10) -> Cell:
        suffix = "x" if connected else "o"
        c = pitch // 2
        cell = Cell(f"pla_and_{suffix}_{pitch}")
        # Vertical poly input column.
        cell.add_rect("poly", Rect(c - 1, 0, c + 1, pitch))
        # Horizontal metal term row.
        cell.add_rect("metal", Rect(0, c - 2, pitch, c + 2))
        if connected:
            # Pulldown transistor: diffusion under the poly column, strapped
            # to the term row by a contact on the source side.  The cut abuts
            # the gate poly (touching = connected) rather than overlapping it,
            # and sits 1 lambda inside both the metal row and the diffusion.
            cell.add_rect("diffusion", Rect(c - 4, c - 2, c + 3, c + 2))
            cell.add_rect("contact", Rect(c - 3, c - 1, c - 1, c + 1))
        return cell

    def _or_crosspoint(self, connected: bool, pitch: int = 10) -> Cell:
        suffix = "x" if connected else "o"
        c = pitch // 2
        cell = Cell(f"pla_or_{suffix}_{pitch}")
        # Vertical metal output column.
        cell.add_rect("metal", Rect(c - 1, 0, c + 3, pitch))
        # Horizontal poly term row (the term drives OR-plane gates).
        cell.add_rect("poly", Rect(0, c - 1, pitch, c + 1))
        if connected:
            # Diffusion tops out flush with the term poly so the transistor
            # has a single source terminal below the gate; the cut abuts the
            # poly row and is enclosed by metal and diffusion.
            cell.add_rect("diffusion", Rect(c - 1, c - 4, c + 3, c + 1))
            cell.add_rect("contact", Rect(c, c - 3, c + 2, c - 1))
        return cell

    def _input_driver(self, pitch: int) -> Cell:
        """True/complement driver: a two-inverter column feeding two poly lines."""
        cell = Cell(f"pla_driver_{pitch}")
        height = 3 * pitch
        # Input poly stub at the bottom (abuts the first inverter's diffusion).
        cell.add_rect("poly", Rect(pitch // 2 - 1, 0, pitch // 2 + 1, 4))
        # Two inverters represented by their active regions.
        for column in range(2):
            x = column * pitch + pitch // 2
            cell.add_rect("diffusion", Rect(x - 2, 4, x + 2, height - 4))
            cell.add_rect("poly", Rect(x - 3, pitch, x + 3, pitch + 2))
            cell.add_rect("implant", Rect(x - 3, 2 * pitch - 1, x + 3, 2 * pitch + 3))
            cell.add_rect("poly", Rect(x - 1, height - 6, x + 1, height))
        cell.add_port("in", Point(pitch // 2, 1), "poly", "input")
        return cell

    def _term_pullup(self, pitch: int) -> Cell:
        """Depletion pullup for one term row.

        The drain strap metal runs out to ``x = pitch + 2`` where the AND
        plane's term row begins (the two abut, so the row is connected); the
        gate-to-drain contact abuts the gate poly and clears the vdd rail by
        the full metal spacing.
        """
        cell = Cell(f"pla_pullup_{pitch}")
        c = pitch // 2
        cell.add_rect("diffusion", Rect(3, c - 2, c + 2, c + 2))
        cell.add_rect("poly", Rect(c, c - 3, c + 2, c + 3))
        cell.add_rect("implant", Rect(c - 2, c - 5, c + 4, c + 5))
        cell.add_rect("contact", Rect(c + 2, c - 1, c + 4, c + 1))
        cell.add_rect("metal", Rect(c + 1, c - 2, pitch + 2, c + 2))
        return cell

    def _output_buffer(self, pitch: int) -> Cell:
        """Inverting output buffer at the foot of each OR-plane column."""
        cell = Cell(f"pla_outbuf_{pitch}")
        height = 3 * pitch
        x = pitch // 2
        cell.add_rect("metal", Rect(x - 1, 4, x + 3, height))
        cell.add_rect("diffusion", Rect(x - 2, 6, x + 2, height - 6))
        cell.add_rect("poly", Rect(x - 3, pitch, x + 3, pitch + 2))
        cell.add_rect("implant", Rect(x - 3, 2 * pitch - 1, x + 3, 2 * pitch + 3))
        cell.add_port("out", Point(x, 2), "metal", "output")
        return cell
