"""Static RAM generator: a decoder plus an array of six-transistor cells.

The RAM demonstrates the same point as the ROM — a memory is a program
output — but with a non-trivial leaf cell (the cross-coupled static cell)
whose replication dominates the array, giving the highest regularity index
of any block in the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.lang.parameters import Parameter, ParameterizedCell
from repro.layout.cell import Cell
from repro.generators.decoder import DecoderGenerator


class SramBitCell(ParameterizedCell):
    """The six-transistor NMOS static cell (two cross-coupled inverters plus
    two pass transistors to the bit lines)."""

    name_prefix = "srambit"

    pitch = Parameter(kind=int, default=24, minimum=20)

    def build(self) -> Cell:
        p = self.pitch
        cell = Cell(self.cell_name())
        mid = p // 2
        # Two cross-coupled inverter columns.
        for column, x in enumerate((p // 4, 3 * p // 4)):
            cell.add_rect("diffusion", Rect(x - 2, 3, x + 2, p - 3))
            cell.add_rect("poly", Rect(x - 4, mid - 1, x + 4, mid + 1))
            cell.add_rect("implant", Rect(x - 3, p - 9, x + 3, p - 3))
            cell.add_rect("buried", Rect(x - 3, mid + 2, x + 3, mid + 6))
        # Cross-coupling poly links.
        cell.add_rect("poly", Rect(p // 4, mid - 1, 3 * p // 4, mid + 1))
        # Word line: horizontal poly across the top of the access devices.
        cell.add_rect("poly", Rect(0, 1, p, 3))
        # Bit lines: vertical metal on both edges.
        cell.add_rect("metal", Rect(1, 0, 4, p))
        cell.add_rect("metal", Rect(p - 4, 0, p - 1, p))
        # Access pass transistors: diffusion stubs from the bit lines.
        cell.add_rect("diffusion", Rect(2, 2, p // 4 + 2, 4))
        cell.add_rect("diffusion", Rect(3 * p // 4 - 2, 2, p - 2, 4))
        # Supplies: metal rail across the middle.
        cell.add_rect("metal", Rect(0, p - 3, p, p))
        cell.add_port("word", Point(1, 2), "poly", "input")
        cell.add_port("bit", Point(2, p // 2), "metal", "inout")
        cell.add_port("bitbar", Point(p - 2, p // 2), "metal", "inout")
        return cell

    @property
    def transistor_count(self) -> int:
        return 6


@dataclass
class RamReport:
    words: int
    bits_per_word: int
    transistors: int
    width: int
    height: int

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def bits(self) -> int:
        return self.words * self.bits_per_word


class RamGenerator(ParameterizedCell):
    """Generate a static RAM block (decoder + cell array + column periphery).

    The generator also carries a behavioural model (:meth:`write` /
    :meth:`read`) so memory-backed designs can be simulated before layout.
    """

    name_prefix = "ram"

    words = Parameter(kind=int, default=16, minimum=2, maximum=1024)
    bits_per_word = Parameter(kind=int, default=8, minimum=1, maximum=64)

    def __init__(self, technology, **parameters):
        super().__init__(technology, **parameters)
        self.report: Optional[RamReport] = None
        self._storage: Dict[int, int] = {}

    def cell_name(self) -> str:
        return f"ram_{self.words}x{self.bits_per_word}"

    @property
    def address_bits(self) -> int:
        return max(1, (self.words - 1).bit_length())

    # -- behavioural model -----------------------------------------------------------

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < self.words:
            raise IndexError(f"address {address} out of range for {self.words}-word RAM")
        self._storage[address] = value & ((1 << self.bits_per_word) - 1)

    def read(self, address: int) -> int:
        if not 0 <= address < self.words:
            raise IndexError(f"address {address} out of range for {self.words}-word RAM")
        return self._storage.get(address, 0)

    # -- layout -------------------------------------------------------------------------

    def build(self) -> Cell:
        cell = Cell(self.cell_name())
        bit = SramBitCell(self.technology)
        bit_cell = bit.cell()
        pitch = bit_cell.width

        decoder = DecoderGenerator(self.technology, address_bits=self.address_bits)
        decoder_cell = decoder.cell()
        cell.place(decoder_cell, 0, 0, name="decoder")
        array_x0 = decoder_cell.width + 8

        # The storage array is a single 2-D arrangement of one leaf cell.
        for word in range(self.words):
            for column in range(self.bits_per_word):
                cell.place(bit_cell, array_x0 + column * pitch, word * bit_cell.height,
                           name=f"cell_{word}_{column}")

        # Column periphery: sense/write structures represented by a small
        # pullup/driver cell per column pair.
        from repro.lang.parameters import shared_brick

        periphery = shared_brick(self.technology, f"ram_col_periph_{pitch}",
                                 lambda: self._column_periphery(pitch))
        top_y = self.words * bit_cell.height
        for column in range(self.bits_per_word):
            x = array_x0 + column * pitch
            cell.place(periphery, x, top_y, name=f"col_{column}")
            cell.add_port(f"data{column}", Point(x + pitch // 2, top_y + periphery.height - 1),
                          "metal", "inout")

        for bit_index in range(self.address_bits):
            port = decoder_cell.port(f"addr{bit_index}")
            cell.add_port(f"addr{bit_index}", port.position, port.layer, "input")
        cell.add_port("write_enable", Point(array_x0 - 4, top_y + 2), "poly", "input")

        bbox = cell.bbox()
        self.report = RamReport(
            words=self.words,
            bits_per_word=self.bits_per_word,
            transistors=6 * self.words * self.bits_per_word
            + (decoder.report.transistors if decoder.report else 0)
            + 4 * self.bits_per_word,
            width=0 if bbox is None else bbox.width,
            height=0 if bbox is None else bbox.height,
        )
        return cell

    def _column_periphery(self, pitch: int) -> Cell:
        cell = Cell(f"ram_col_periph_{pitch}")
        height = 16
        cell.add_rect("metal", Rect(1, 0, 4, height))
        cell.add_rect("metal", Rect(pitch - 4, 0, pitch - 1, height))
        cell.add_rect("diffusion", Rect(2, 2, pitch - 2, 6))
        cell.add_rect("poly", Rect(0, 7, pitch, 9))
        cell.add_rect("implant", Rect(2, 10, 8, 14))
        cell.add_rect("diffusion", Rect(3, 10, 7, 15))
        return cell
