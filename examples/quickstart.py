"""Quickstart: compile a programmed logic array from equations to CIF.

This is the paper's claim in miniature: a *completely textual description*
(three boolean equations and a handful of generator parameters) is compiled
into manufacturing data (CIF) for a silicon part, with physical verification
(DRC + extraction) along the way.

Run:  python examples/quickstart.py [--out DIR] [--trace PATH] [--vcd PATH]

Generated CIF goes to ``--out`` (default: a fresh temporary directory), so
running the example never litters the repository.  ``--trace`` records a
Chrome trace-event JSON of the whole flow (open it at ui.perfetto.dev or in
``chrome://tracing``); ``--vcd`` dumps a GTKWave-compatible waveform of the
adder's gate-level simulation over all eight input patterns.
"""

import argparse
import os
import tempfile

from repro.cif import write_cif
from repro.drc import check_cell
from repro.extract import extract_cell
from repro.generators import PlaGenerator
from repro.layout import Library, cell_statistics
from repro.logic import TruthTable, parse_expr
from repro.metrics import format_table, measure_cell
from repro.netlist import GateLevelSimulator, GateType, Module
from repro.obs import trace as obs_trace
from repro.technology import nmos_technology


def adder_module() -> Module:
    """The same full adder as a structural gate-level netlist."""
    module = Module("adder")
    module.add_inputs("a", "b", "cin")
    module.add_outputs("sum", "carry")
    module.add_gate(GateType.XOR, "ab", ["a", "b"])
    module.add_gate(GateType.XOR, "sum", ["ab", "cin"])
    module.add_gate(GateType.AND, "ab_and", ["a", "b"])
    module.add_gate(GateType.AND, "ac_and", ["a", "cin"])
    module.add_gate(GateType.AND, "bc_and", ["b", "cin"])
    module.add_gate(GateType.OR, "carry", ["ab_and", "ac_and", "bc_and"])
    return module


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="directory for generated CIF output "
                             "(default: a fresh temporary directory)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON of the flow "
                             "(view at ui.perfetto.dev)")
    parser.add_argument("--vcd", default=None, metavar="PATH",
                        help="dump a VCD waveform of the adder's gate-level "
                             "simulation (view in GTKWave)")
    args = parser.parse_args(argv)
    if args.trace:
        obs_trace.enable(args.trace)
    out_dir = args.out or tempfile.mkdtemp(prefix="quickstart_")
    os.makedirs(out_dir, exist_ok=True)

    technology = nmos_technology()          # Mead & Conway NMOS, lambda = 2.5 um

    # 1. The design, as text: a one-bit full adder.
    equations = {
        "sum": parse_expr("a ^ b ^ cin"),
        "carry": parse_expr("a & b | a & cin | b & cin"),
    }
    table = TruthTable.from_expressions(equations, input_names=["a", "b", "cin"])

    # 2. The microscopic silicon compiler: a PLA programmed by the equations.
    generator = PlaGenerator(technology, table, name="adder_pla")
    pla = generator.cell()
    report = generator.report
    print(f"PLA: {report.inputs} inputs, {report.outputs} outputs, "
          f"{report.terms} product terms, {report.total_transistors} transistors")

    # 3. Physical verification: design rules and extraction.
    violations = check_cell(pla, technology)
    extracted = extract_cell(pla, technology)
    print(f"DRC violations: {len(violations)}")
    print(f"Extracted devices: {extracted.summary()}")

    # 4. Check the compiled function against the specification.
    mismatches = 0
    for minterm in range(8):
        assignment = table.assignment_for(minterm)
        outputs = generator.evaluate(assignment)
        for name in ("sum", "carry"):
            if outputs[name] != table.output(minterm, name):
                mismatches += 1
    print(f"Functional mismatches against the truth table: {mismatches}")

    # 5. Manufacturing data: CIF out.
    library = Library("quickstart", technology)
    library.add_cell(pla)
    cif_path = os.path.join(out_dir, "quickstart_adder.cif")
    cif_text = write_cif(library, path=cif_path)
    print(f"Wrote {cif_path} ({len(cif_text)} bytes of CIF)")

    metrics = measure_cell(pla, technology)
    print()
    print(format_table(metrics.header(), [metrics.row()], "Layout metrics"))

    # 6. Optional observability artifacts.
    if args.vcd:
        simulator = GateLevelSimulator(adder_module())
        vectors = [{"a": m & 1, "b": (m >> 1) & 1, "cin": (m >> 2) & 1}
                   for m in range(8)]
        simulator.run(vectors, vcd=args.vcd)
        print(f"Wrote {args.vcd} (VCD waveform of the adder simulation)")
    if args.trace:
        obs_trace.write(args.trace)
        print(f"Wrote {args.trace} (Chrome trace-event JSON of the flow)")


if __name__ == "__main__":
    main()
