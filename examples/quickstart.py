"""Quickstart: compile a programmed logic array from equations to CIF.

This is the paper's claim in miniature: a *completely textual description*
(three boolean equations and a handful of generator parameters) is compiled
into manufacturing data (CIF) for a silicon part, with physical verification
(DRC + extraction) along the way.

Run:  python examples/quickstart.py [--out DIR]

Generated CIF goes to ``--out`` (default: a fresh temporary directory), so
running the example never litters the repository.
"""

import argparse
import os
import tempfile

from repro.cif import write_cif
from repro.drc import check_cell
from repro.extract import extract_cell
from repro.generators import PlaGenerator
from repro.layout import Library, cell_statistics
from repro.logic import TruthTable, parse_expr
from repro.metrics import format_table, measure_cell
from repro.technology import nmos_technology


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="directory for generated CIF output "
                             "(default: a fresh temporary directory)")
    args = parser.parse_args(argv)
    out_dir = args.out or tempfile.mkdtemp(prefix="quickstart_")
    os.makedirs(out_dir, exist_ok=True)

    technology = nmos_technology()          # Mead & Conway NMOS, lambda = 2.5 um

    # 1. The design, as text: a one-bit full adder.
    equations = {
        "sum": parse_expr("a ^ b ^ cin"),
        "carry": parse_expr("a & b | a & cin | b & cin"),
    }
    table = TruthTable.from_expressions(equations, input_names=["a", "b", "cin"])

    # 2. The microscopic silicon compiler: a PLA programmed by the equations.
    generator = PlaGenerator(technology, table, name="adder_pla")
    pla = generator.cell()
    report = generator.report
    print(f"PLA: {report.inputs} inputs, {report.outputs} outputs, "
          f"{report.terms} product terms, {report.total_transistors} transistors")

    # 3. Physical verification: design rules and extraction.
    violations = check_cell(pla, technology)
    extracted = extract_cell(pla, technology)
    print(f"DRC violations: {len(violations)}")
    print(f"Extracted devices: {extracted.summary()}")

    # 4. Check the compiled function against the specification.
    mismatches = 0
    for minterm in range(8):
        assignment = table.assignment_for(minterm)
        outputs = generator.evaluate(assignment)
        for name in ("sum", "carry"):
            if outputs[name] != table.output(minterm, name):
                mismatches += 1
    print(f"Functional mismatches against the truth table: {mismatches}")

    # 5. Manufacturing data: CIF out.
    library = Library("quickstart", technology)
    library.add_cell(pla)
    cif_path = os.path.join(out_dir, "quickstart_adder.cif")
    cif_text = write_cif(library, path=cif_path)
    print(f"Wrote {cif_path} ({len(cif_text)} bytes of CIF)")

    metrics = measure_cell(pla, technology)
    print()
    print(format_table(metrics.header(), [metrics.row()], "Layout metrics"))


if __name__ == "__main__":
    main()
