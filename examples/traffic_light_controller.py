"""A traffic-light controller compiled from a finite-state machine.

Demonstrates the behavioural route into silicon: a symbolic FSM is encoded,
its next-state logic minimised, and the result laid out as a PLA with a
state register — then simulated at the behavioural level and checked against
the encoded PLA personality.

Run:  python examples/traffic_light_controller.py
"""

from repro.generators import FsmLayoutGenerator
from repro.logic import FSM, StateEncoding, encode_fsm
from repro.metrics import format_table
from repro.technology import nmos_technology


def build_fsm() -> FSM:
    """A two-road traffic light with a car sensor on the side road."""
    fsm = FSM("traffic", inputs=["car", "timer"],
              outputs=["main_green", "main_yellow", "side_green", "side_yellow"])
    fsm.add_state("MAIN_GREEN", {"main_green": 1}, reset=True)
    fsm.add_state("MAIN_YELLOW", {"main_yellow": 1})
    fsm.add_state("SIDE_GREEN", {"side_green": 1})
    fsm.add_state("SIDE_YELLOW", {"side_yellow": 1})
    fsm.add_transition("MAIN_GREEN", "MAIN_YELLOW", {"car": 1})
    fsm.add_transition("MAIN_GREEN", "MAIN_GREEN", {"car": 0})
    fsm.add_transition("MAIN_YELLOW", "SIDE_GREEN")
    fsm.add_transition("SIDE_GREEN", "SIDE_YELLOW", {"timer": 1})
    fsm.add_transition("SIDE_GREEN", "SIDE_GREEN", {"timer": 0})
    fsm.add_transition("SIDE_YELLOW", "MAIN_GREEN")
    return fsm


def main() -> None:
    technology = nmos_technology()
    fsm = build_fsm()

    # Behavioural simulation of a day at the junction.
    inputs = [{"car": 0, "timer": 0}, {"car": 1, "timer": 0}, {"car": 0, "timer": 0},
              {"car": 0, "timer": 0}, {"car": 0, "timer": 1}, {"car": 0, "timer": 0}]
    trace = fsm.simulate(inputs)
    print("Behavioural trace (next state per cycle):")
    for cycle, record in enumerate(trace):
        lights = [name for name in fsm.outputs if record.get(name)]
        print(f"  cycle {cycle}: lights={lights or ['(all red)']} -> {record['__state__']}")

    # Compare encodings: binary vs one-hot, and the layout cost of each.
    rows = []
    for encoding in ("binary", "one_hot"):
        generator = FsmLayoutGenerator(technology, build_fsm(), encoding=encoding)
        generator.cell()
        report = generator.report
        rows.append([encoding, report.states, report.state_bits, report.pla_terms,
                     report.transistors, report.width, report.height, report.area])
    print()
    print(format_table(
        ["encoding", "states", "state bits", "PLA terms", "transistors",
         "width", "height", "area (sq lambda)"],
        rows,
        "FSM compiled to PLA + state register",
    ))

    encoded = encode_fsm(build_fsm(), StateEncoding.BINARY)
    print()
    print("State assignment:", encoded.state_codes)


if __name__ == "__main__":
    main()
