"""Parameterised chip assembly: one program, a family of chips.

The paper singles out chip assembly as the clearest demonstration of
parameterised specification.  This example is one short assembly program
whose parameters (datapath width, control complexity) generate a whole
family of pads-out chips; the program stays the same size while the chips
it produces grow.

Run:  python examples/chip_assembly.py [--out DIR] [--trace PATH]

Generated CIF goes to ``--out`` (default: a fresh temporary directory), so
running the example never litters the repository.  ``--trace`` records a
Chrome trace-event JSON of the whole family build — placement, pad ring,
routing escalations and the hierarchical sign-off — viewable at
ui.perfetto.dev.
"""

import argparse
import os
import tempfile

from repro.assembly import ChipAssembler
from repro.cif import write_cif
from repro.generators import DatapathColumn, DatapathGenerator, PlaGenerator, RomGenerator
from repro.layout import Library
from repro.logic import TruthTable, parse_expr
from repro.metrics import format_table
from repro.obs import trace as obs_trace
from repro.technology import nmos_technology


def control_equations(extra_terms: int):
    """A control PLA whose complexity is a parameter."""
    equations = {
        "load": parse_expr("start & ~busy"),
        "add": parse_expr("start & busy"),
        "done": parse_expr("~start & busy"),
    }
    for index in range(extra_terms):
        equations[f"aux{index}"] = parse_expr(
            f"start & {'~' if index % 2 else ''}busy"
        )
    return TruthTable.from_expressions(equations, input_names=["start", "busy"])


def build_chip(name: str, bits: int, extra_control: int):
    """The parameterised assembly program (constant size, variable output)."""
    technology = nmos_technology()
    assembler = ChipAssembler(name, technology)

    datapath = DatapathGenerator(
        technology,
        [DatapathColumn("register", "acc"), DatapathColumn("adder", "alu"),
         DatapathColumn("shifter", "sh"), DatapathColumn("bus", "bus")],
        bits=bits,
    )
    control = PlaGenerator(technology, control_equations(extra_control),
                           name=f"{name}_control")
    microcode = RomGenerator(technology, [i % 256 for i in range(16)], bits_per_word=8)

    assembler.add_block("datapath", datapath.cell())
    assembler.add_block("control", control.cell())
    assembler.add_block("microcode", microcode.cell())
    assembler.add_supply_pads()
    assembler.add_pad("start", "input", connect_to=("control", "start"))
    assembler.add_pad("busy", "input", connect_to=("control", "busy"))
    assembler.add_pad("done", "output", connect_to=("control", "done"))
    assembler.add_pad("phi1", "input")
    assembler.add_pad("phi2", "input")
    for bit in (0, bits - 1):
        assembler.add_pad(f"bus{bit}", "output", connect_to=("datapath", f"bus_out{bit}"))

    chip = assembler.assemble()
    return assembler, chip


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="directory for generated CIF output "
                             "(default: a fresh temporary directory)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON of the family "
                             "build (view at ui.perfetto.dev)")
    args = parser.parse_args(argv)
    if args.trace:
        obs_trace.enable(args.trace)
    out_dir = args.out or tempfile.mkdtemp(prefix="chip_family_")
    os.makedirs(out_dir, exist_ok=True)

    technology = nmos_technology()
    rows = []
    library = Library("chip_family", technology)
    # One hierarchical analyzer for the whole family: the chips share every
    # generator's cells, so each unique block is DRC'd, extracted and timed
    # once.
    from repro.analysis import HierAnalyzer

    analyzer = HierAnalyzer(technology)
    for bits, extra in [(4, 0), (8, 2), (16, 4)]:
        name = f"family_{bits}b"
        assembler, chip = build_chip(name, bits, extra)
        library.add_cell(chip)
        report = assembler.report
        sign_off = assembler.sign_off(analyzer)
        rows.append([
            name, bits, assembler.description_size(), report.pad_count,
            report.core_width * report.core_height, report.chip_area,
            f"{report.core_utilisation:.2f}", f"{report.pad_overhead:.2f}",
            len(sign_off.violations), sign_off.circuit.transistor_count,
            f"{sign_off.max_frequency_mhz:.2f}",
        ])
    print(format_table(
        ["chip", "bits", "description size", "pads", "core area", "chip area",
         "utilisation", "pad overhead", "DRC", "transistors", "fmax (MHz)"],
        rows,
        "One assembly program, three chips (signed off hierarchically)",
    ))

    cif_path = os.path.join(out_dir, "chip_family.cif")
    cif_text = write_cif(library, path=cif_path)
    print(f"\nWrote {cif_path} with {len(library)} cells "
          f"({len(cif_text)} bytes) — the manufacturing interface for the whole family.")

    if args.trace:
        obs_trace.write(args.trace)
        print(f"Wrote {args.trace} (Chrome trace-event JSON of the build)")


if __name__ == "__main__":
    main()
