"""Behavioural compilation of a PDP-8-class subset machine.

The paper cites the CMU result that a PDP-8 compiled automatically from an
ISP description came "within 50% of a commercial design" in chip count.
This example reproduces that flow at laptop scale: a PDP-8-flavoured
accumulator machine (AND/TAD/ISZ-style ops, a small memory) is described in
the RTL, simulated running a program, compiled to gates, and its automatic
layout is compared against a hand-composed datapath+PLA implementation of
the same machine.

Run:  python examples/pdp8_subset_compiler.py
"""

from repro.generators import DatapathColumn, DatapathGenerator, PlaGenerator
from repro.layout import cell_statistics
from repro.logic import TruthTable
from repro.metrics import format_table, measure_cell
from repro.netlist import GateLevelSimulator
from repro.rtl import RtlCompiler, RtlSimulator, parse_rtl
from repro.rtl.compiler import synthesize_layout
from repro.technology import nmos_technology

# An 8-bit, 16-word PDP-8-flavoured accumulator machine.
# op: 0 = AND (acc &= mem), 1 = TAD (acc += mem), 2 = STORE, 3 = LOAD,
#     4 = CLEAR, 5 = SKIP-IF-ZERO (sets the skip output), others = NOP.
PDP8_RTL = """
machine pdp8s;
input op[3], addr[4], run[1];
output acc_out[8], skip[1];
register acc[8];
memory mem[16][8];
always begin
    if (run) begin
        if (op == 0) acc <- acc & mem[addr];
        if (op == 1) acc <- acc + mem[addr];
        if (op == 2) mem[addr] <- acc;
        if (op == 3) acc <- mem[addr];
        if (op == 4) acc <- 0;
    end
    acc_out = acc;
    skip = (op == 5) && (acc == 0);
end
"""


def run_behavioural_program() -> int:
    """Assemble and run a tiny program on the behavioural simulator."""
    machine = parse_rtl(PDP8_RTL)
    simulator = RtlSimulator(machine)
    simulator.load_memory("mem", [0, 5, 12, 0x0F] + [0] * 12)
    program = [
        {"run": 1, "op": 4, "addr": 0},   # CLEAR
        {"run": 1, "op": 1, "addr": 1},   # TAD mem[1]  (acc = 5)
        {"run": 1, "op": 1, "addr": 2},   # TAD mem[2]  (acc = 17)
        {"run": 1, "op": 0, "addr": 3},   # AND mem[3]  (acc = 17 & 15 = 1)
        {"run": 1, "op": 2, "addr": 4},   # STORE -> mem[4]
    ]
    for step in program:
        simulator.step(step)
    assert simulator.read_memory("mem", 4) == (5 + 12) & 0x0F
    return simulator.get("acc")


# For the automatic-vs-hand comparison the 16-word memory is excluded from
# both sides (as the 1979 comparison excluded the PDP-8's core memory): the
# processor reads its memory operand from the "mdata" input port instead.
PDP8_PROCESSOR_RTL = """
machine pdp8p;
input op[3], mdata[8], run[1];
output acc_out[8], skip[1], mwrite[8];
register acc[8];
always begin
    if (run) begin
        if (op == 0) acc <- acc & mdata;
        if (op == 1) acc <- acc + mdata;
        if (op == 3) acc <- mdata;
        if (op == 4) acc <- 0;
    end
    mwrite = acc;
    acc_out = acc;
    skip = (op == 5) && (acc == 0);
end
"""


def compiled_machine_summary():
    """Compile the processor behaviour to gates and an automatic layout."""
    technology = nmos_technology()
    compiled = RtlCompiler(parse_rtl(PDP8_PROCESSOR_RTL)).compile()
    layout, report = synthesize_layout(compiled, technology)
    return compiled, layout, report


def hand_design_summary():
    """A hand-structured implementation: bit-sliced datapath + control PLA.

    This plays the role of the 'commercial design' baseline: the same
    function built from the datapath generator (registers, adder, bus) and a
    small control PLA, composed by abutment rather than synthesised rows.
    """
    technology = nmos_technology()
    datapath = DatapathGenerator(
        technology,
        [
            DatapathColumn("register", "acc"),
            DatapathColumn("adder", "alu"),
            DatapathColumn("mux", "opmux"),
            DatapathColumn("bus", "membus"),
        ],
        bits=8,
    )
    datapath_cell = datapath.cell()

    # Control: decode the 3-bit opcode into the five control lines.
    control_table = TruthTable(["op2", "op1", "op0"],
                               ["do_and", "do_add", "do_store", "do_load", "do_clear"])
    for opcode, column in enumerate(["do_and", "do_add", "do_store", "do_load", "do_clear"]):
        control_table.set_output(opcode, column, 1)
    control = PlaGenerator(technology, control_table, name="pdp8_control")
    control_cell = control.cell()

    # Memory is shared between both implementations (the paper's comparison
    # was about the processor), so it is excluded from both area numbers.
    total_transistors = datapath.report.transistors + control.report.total_transistors
    total_area = (datapath.report.width * datapath.report.height
                  + control.report.width * control.report.height)
    return datapath_cell, control_cell, total_transistors, total_area


def main() -> None:
    technology = nmos_technology()

    acc = run_behavioural_program()
    print(f"Behavioural program ran; final accumulator = {acc}")

    compiled, auto_layout, auto_report = compiled_machine_summary()
    print(f"Compiled automatically: {compiled.gate_count} gates, "
          f"{compiled.dff_count} flip-flops, {compiled.transistor_estimate} transistors")

    datapath_cell, control_cell, hand_transistors, hand_area = hand_design_summary()

    auto_area = auto_report.area
    rows = [
        ["automatic (RTL compiler)", compiled.transistor_estimate, auto_area,
         f"{auto_area / max(1, hand_area):.2f}x"],
        ["hand structure (datapath+PLA)", hand_transistors, hand_area, "1.00x"],
    ]
    print()
    print(format_table(
        ["implementation", "transistors", "area (sq lambda)", "area ratio"],
        rows,
        "PDP-8 subset: automatic compilation vs hand structure (memory excluded)",
    ))

    ratio = auto_area / max(1, hand_area)
    print()
    print(f"Automatic-to-hand area ratio: {ratio:.2f} "
          f"(the 1979 claim for the full PDP-8 was 'within 50%', i.e. <= 1.5x on chip count)")


if __name__ == "__main__":
    main()
